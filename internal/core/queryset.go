package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"vdsms/internal/minhash"
	"vdsms/internal/qindex"
)

// QuerySet holds the subscribed continuous queries — sketches, lengths and
// the Hash-Query index — independently of any stream. Multiple Engines
// (one per monitored stream, the paper's "many concurrent video streams"
// setting) can share one QuerySet: probing is read-only, so monitoring
// goroutines proceed in parallel, while Add/Remove take the write lock and
// apply to every sharing engine at its next window.
//
// All sharers see the same hash family, so sketches are comparable by
// construction.
type QuerySet struct {
	mu       sync.RWMutex
	fam      *minhash.Family
	k        int
	seed     int64
	useIndex bool
	queries  map[int]*queryInfo
	index    *qindex.Index // nil until first query when useIndex
	scan     qindex.Scan
	// cur is the immutable snapshot used by window processing: engines (and
	// their worker shards) read query state lock-free and see one
	// consistent subscription set per window. Add/Remove publish a fresh
	// snapshot under the write lock; the copy is O(m), dominated by the
	// O(K·m) index maintenance those paths already pay.
	cur atomic.Pointer[queryView]
}

// queryView is an immutable snapshot of the subscription state. queryInfo
// values are never mutated after insertion, so sharing them is safe.
type queryView struct {
	queries   map[int]*queryInfo
	maxFrames int
}

// lookup returns the snapshot's query with the given id, or nil.
func (v *queryView) lookup(id int) *queryInfo { return v.queries[id] }

// rebuildView publishes a fresh snapshot; callers hold the write lock.
func (qs *QuerySet) rebuildView() {
	v := &queryView{queries: make(map[int]*queryInfo, len(qs.queries))}
	for id, q := range qs.queries {
		v.queries[id] = q
		if q.frames > v.maxFrames {
			v.maxFrames = q.frames
		}
	}
	qs.cur.Store(v)
}

// view returns the current immutable snapshot (never nil).
func (qs *QuerySet) view() *queryView { return qs.cur.Load() }

// NewQuerySet builds an empty query set with K hash functions drawn from
// seed. useIndex selects Hash-Query-index probing over linear scans.
func NewQuerySet(k int, seed int64, useIndex bool) (*QuerySet, error) {
	fam, err := minhash.NewFamily(k, seed)
	if err != nil {
		return nil, err
	}
	qs := &QuerySet{
		fam:      fam,
		k:        k,
		seed:     seed,
		useIndex: useIndex,
		queries:  make(map[int]*queryInfo),
	}
	qs.rebuildView()
	return qs, nil
}

// K returns the number of hash functions.
func (qs *QuerySet) K() int { return qs.k }

// Family exposes the shared hash family.
func (qs *QuerySet) Family() *minhash.Family { return qs.fam }

// Len returns the number of subscribed queries.
func (qs *QuerySet) Len() int {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	return len(qs.queries)
}

// IDs returns the subscribed query ids (unordered).
func (qs *QuerySet) IDs() []int {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	out := make([]int, 0, len(qs.queries))
	for id := range qs.queries {
		out = append(out, id)
	}
	return out
}

// Add subscribes a query given the cell ids of its key frames.
func (qs *QuerySet) Add(id int, cellIDs []uint64) error {
	if len(cellIDs) == 0 {
		return fmt.Errorf("core: query %d has no frames", id)
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if _, dup := qs.queries[id]; dup {
		return fmt.Errorf("core: query id %d already subscribed", id)
	}
	q := &queryInfo{
		id:      id,
		frames:  len(cellIDs),
		sketch:  qs.fam.SketchSet(cellIDs),
		cellIDs: append([]uint64(nil), cellIDs...),
	}
	return qs.insert(q)
}

// insert wires an already-sketched query in; callers hold the write lock.
func (qs *QuerySet) insert(q *queryInfo) error {
	iq := qindex.Query{ID: q.id, Length: q.frames, Sketch: q.sketch}
	if qs.useIndex {
		if qs.index == nil {
			idx, err := qindex.Build([]qindex.Query{iq})
			if err != nil {
				return err
			}
			qs.index = idx
		} else if err := qs.index.Add(iq); err != nil {
			return err
		}
	}
	qs.queries[q.id] = q
	qs.scan.Queries = append(qs.scan.Queries, iq)
	qs.rebuildView()
	return nil
}

// Remove unsubscribes a query.
func (qs *QuerySet) Remove(id int) error {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if _, ok := qs.queries[id]; !ok {
		return fmt.Errorf("core: query id %d not subscribed", id)
	}
	delete(qs.queries, id)
	for i, q := range qs.scan.Queries {
		if q.ID == id {
			qs.scan.Queries = append(qs.scan.Queries[:i], qs.scan.Queries[i+1:]...)
			break
		}
	}
	qs.rebuildView()
	if qs.useIndex && qs.index != nil {
		return qs.index.Remove(id)
	}
	return nil
}

// usingIndex reports whether probing goes through the Hash-Query index.
func (qs *QuerySet) usingIndex() bool {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	return qs.useIndex && qs.index != nil
}

// probeShard runs the configured prober for one query shard under the read
// lock. Shard outputs and scan counts partition the full probe's exactly
// (see qindex.ShardOf), so per-window stats are worker-count invariant.
func (qs *QuerySet) probeShard(sk minhash.Sketch, delta float64, shard, nshards int) (qindex.ProbeOutput, int) {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	if qs.useIndex && qs.index != nil {
		return qs.index.ProbeShard(sk, delta, shard, nshards), 0
	}
	return qs.scan.ProbeShard(sk, delta, shard, nshards)
}

// Serialisation format "VQS1": K, seed, useIndex, count, then per query
// id, length and K raw sketch values — everything needed to reconstruct
// the set (the index is rebuilt on load, which the paper treats as an
// offline step anyway).
var qsMagic = [4]byte{'V', 'Q', 'S', '1'}

// ErrBadQuerySet is returned by LoadQuerySet on malformed input.
var ErrBadQuerySet = errors.New("core: not a VQS1 query-set stream")

// Save writes the query set to w.
func (qs *QuerySet) Save(w io.Writer) error {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	var hdr [25]byte
	copy(hdr[:4], qsMagic[:])
	binary.BigEndian.PutUint32(hdr[4:], uint32(qs.k))
	binary.BigEndian.PutUint64(hdr[8:], uint64(qs.seed))
	if qs.useIndex {
		hdr[16] = 1
	}
	binary.BigEndian.PutUint64(hdr[17:], uint64(len(qs.queries)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	// Deterministic order via the scan list (insertion order).
	for _, iq := range qs.scan.Queries {
		var qh [16]byte
		binary.BigEndian.PutUint64(qh[:8], uint64(iq.ID))
		binary.BigEndian.PutUint64(qh[8:], uint64(iq.Length))
		if _, err := w.Write(qh[:]); err != nil {
			return err
		}
		buf := make([]byte, 8*len(iq.Sketch))
		for i, v := range iq.Sketch {
			binary.BigEndian.PutUint64(buf[i*8:], v)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadQuerySet reconstructs a query set saved with Save, rebuilding the
// Hash-Query index.
func LoadQuerySet(r io.Reader) (*QuerySet, error) {
	var hdr [25]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: reading query-set header: %w", err)
	}
	if [4]byte(hdr[:4]) != qsMagic {
		return nil, ErrBadQuerySet
	}
	k := int(binary.BigEndian.Uint32(hdr[4:]))
	seed := int64(binary.BigEndian.Uint64(hdr[8:]))
	useIndex := hdr[16] == 1
	count := binary.BigEndian.Uint64(hdr[17:])
	if count > 1<<20 {
		return nil, fmt.Errorf("core: implausible query count %d", count)
	}
	qs, err := NewQuerySet(k, seed, useIndex)
	if err != nil {
		return nil, err
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	for n := uint64(0); n < count; n++ {
		var qh [16]byte
		if _, err := io.ReadFull(r, qh[:]); err != nil {
			return nil, fmt.Errorf("core: reading query %d: %w", n, err)
		}
		id := int(binary.BigEndian.Uint64(qh[:8]))
		length := int(binary.BigEndian.Uint64(qh[8:]))
		if length <= 0 {
			return nil, fmt.Errorf("core: query %d has non-positive length", id)
		}
		buf := make([]byte, 8*k)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("core: reading query %d sketch: %w", id, err)
		}
		sk := make(minhash.Sketch, k)
		for i := range sk {
			sk[i] = binary.BigEndian.Uint64(buf[i*8:])
		}
		if err := qs.insert(&queryInfo{id: id, frames: length, sketch: sk}); err != nil {
			return nil, err
		}
	}
	return qs, nil
}

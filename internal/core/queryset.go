package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"vdsms/internal/minhash"
	"vdsms/internal/prefilter"
	"vdsms/internal/qindex"
)

// QuerySet holds the subscribed continuous queries — sketches, lengths, the
// Hash-Query index and the optional Bloom pre-filter — independently of any
// stream. Multiple Engines (one per monitored stream, the paper's "many
// concurrent video streams" setting) share one QuerySet, so query memory is
// O(queries), not O(queries × streams).
//
// The set is organised as a sequence of immutable versioned planes
// (queryPlane): window processing loads the current plane once per basic
// window with a single atomic pointer read and probes it lock-free, while
// Add/AddBatch/Remove build a copy-on-write successor off to the side and
// publish it atomically. Churn therefore never stalls ingest — an engine
// mid-window keeps the plane it captured (old version), and picks up the
// new version at its next window. All sharers see the same hash family, so
// sketches are comparable by construction.
type QuerySet struct {
	fam      *minhash.Family
	k        int
	seed     int64
	useIndex bool

	// mu serialises writers only (subscription churn). Readers never take
	// it: they load cur and work on that immutable plane.
	mu         sync.Mutex
	pfRebuilds atomic.Int64
	// cur is the current immutable plane, swapped atomically on churn.
	cur atomic.Pointer[queryPlane]
}

// queryPlane is one immutable version of the shared query plane: the
// subscription map, the insertion-ordered authoritative list, the
// Hash-Query index and the Bloom pre-filter, all consistent with each
// other. Nothing in a published plane is ever mutated — writers clone what
// they change — so engines and their worker shards read it without locks.
type queryPlane struct {
	version   uint64
	queries   map[int]*queryInfo
	maxFrames int
	scan      qindex.Scan   // insertion-ordered; rebuilds pass through the same sequence
	index     *qindex.Index // nil until the first query when useIndex
	preFilter bool
	pf        *prefilter.Filter // nil until EnablePreFilter

	// ownedIndex/ownedPF are builder-only flags, meaningful while the plane
	// is under construction by a writer holding mu: they record that index
	// (resp. pf) is already a private copy, so a multi-insert operation
	// (LoadQuerySet, RestoreEngine) clones once, not per query. begin()
	// starts successors with both flags clear.
	ownedIndex, ownedPF bool
}

// lookup returns the plane's query with the given id, or nil.
func (v *queryPlane) lookup(id int) *queryInfo { return v.queries[id] }

// usingIndex reports whether this plane probes through the Hash-Query index.
func (v *queryPlane) usingIndex() bool { return v.index != nil }

// probeShard runs the configured prober for one query shard against this
// plane. Shard outputs and scan counts partition the full probe's exactly
// (see qindex.ShardOf), so per-window stats are worker-count invariant.
// Lock-free: the plane is immutable.
func (v *queryPlane) probeShard(sk minhash.Sketch, delta float64, shard, nshards int, mask qindex.RowMask) (qindex.ProbeOutput, int) {
	if v.index != nil {
		return v.index.ProbeShardMasked(sk, delta, shard, nshards, mask), 0
	}
	return v.scan.ProbeShard(sk, delta, shard, nshards)
}

// windowRowMask computes the pre-filter admission mask for one window
// sketch against this plane: row i is admitted iff the filter may hold
// (i, sk[i]). Returns a nil mask (admit all) when the tier is off or
// probing is not indexed. rejected counts the rows dropped — each one
// saves a binary search and rejects every candidate query at that hash
// position in O(1).
func (v *queryPlane) windowRowMask(sk minhash.Sketch) (mask qindex.RowMask, probed, rejected int) {
	if !v.preFilter || v.pf == nil || v.index == nil {
		return nil, 0, 0
	}
	mask = qindex.NewRowMask(len(sk))
	for i, val := range sk {
		probed++
		if v.pf.MayContain(i, val) {
			mask.Set(i)
		} else {
			rejected++
		}
	}
	return mask, probed, rejected
}

// bytes estimates the plane's memory footprint: sketches and retained raw
// cell ids, the Hash-Query index triples, and the Bloom filter bits. This
// is the term the fleet's bytes-per-stream accounting shows is paid once
// per process, not once per stream.
func (v *queryPlane) bytes() int {
	b := 0
	for _, q := range v.queries {
		b += 8*len(q.sketch) + 8*len(q.cellIDs) + 64 // sketch + audit ids + struct/map overhead
	}
	// scan entries share sketch backing arrays with the queries map; count
	// the slice headers only.
	b += len(v.scan.Queries) * 40
	if v.index != nil {
		b += v.index.Bytes()
	}
	if v.pf != nil {
		b += v.pf.Bytes()
	}
	return b
}

// view returns the current immutable plane (never nil).
func (qs *QuerySet) view() *queryPlane { return qs.cur.Load() }

// begin starts a copy-on-write successor of the current plane: the
// subscription map and scan list are copied (their entries are immutable
// and shared), the index and filter pointers carry over until the mutating
// operation clones or rebuilds them. Callers hold mu.
func (qs *QuerySet) begin() *queryPlane {
	old := qs.cur.Load()
	np := &queryPlane{
		version:   old.version + 1,
		queries:   make(map[int]*queryInfo, len(old.queries)+1),
		scan:      qindex.Scan{Queries: append([]qindex.Query(nil), old.scan.Queries...)},
		index:     old.index,
		preFilter: old.preFilter,
		pf:        old.pf,
	}
	for id, q := range old.queries {
		np.queries[id] = q
	}
	return np
}

// publish recomputes the plane's derived fields and swaps it in as the
// current version; callers hold mu.
func (qs *QuerySet) publish(np *queryPlane) {
	np.maxFrames = 0
	for _, q := range np.queries {
		if q.frames > np.maxFrames {
			np.maxFrames = q.frames
		}
	}
	qs.cur.Store(np)
	if np.preFilter {
		qs.publishPreFilterGauges(np)
	}
}

// NewQuerySet builds an empty query set with K hash functions drawn from
// seed. useIndex selects Hash-Query-index probing over linear scans.
func NewQuerySet(k int, seed int64, useIndex bool) (*QuerySet, error) {
	fam, err := minhash.NewFamily(k, seed)
	if err != nil {
		return nil, err
	}
	qs := &QuerySet{
		fam:      fam,
		k:        k,
		seed:     seed,
		useIndex: useIndex,
	}
	qs.cur.Store(&queryPlane{queries: make(map[int]*queryInfo)})
	return qs, nil
}

// K returns the number of hash functions.
func (qs *QuerySet) K() int { return qs.k }

// Family exposes the shared hash family.
func (qs *QuerySet) Family() *minhash.Family { return qs.fam }

// Len returns the number of subscribed queries.
func (qs *QuerySet) Len() int { return len(qs.view().queries) }

// Version returns the current query-plane version: 0 for the empty set,
// incremented by every Add/AddBatch/Remove/EnablePreFilter. Engines stamp
// the version they captured, so tests (and the fleet's stats surface) can
// verify that in-flight windows stay on the plane they started with.
func (qs *QuerySet) Version() uint64 { return qs.view().version }

// PlaneBytes estimates the memory footprint of the current query plane —
// sketches, Hash-Query index and pre-filter. Shared by every engine on the
// set: the whole point of the plane split is that this figure is paid once
// per process regardless of the stream count.
func (qs *QuerySet) PlaneBytes() int { return qs.view().bytes() }

// IDs returns the subscribed query ids (unordered).
func (qs *QuerySet) IDs() []int {
	v := qs.view()
	out := make([]int, 0, len(v.queries))
	for id := range v.queries {
		out = append(out, id)
	}
	return out
}

// Add subscribes a query given the cell ids of its key frames. The new
// plane is built copy-on-write and published atomically: engines mid-window
// finish on the old version and see the query at their next window.
func (qs *QuerySet) Add(id int, cellIDs []uint64) error {
	if len(cellIDs) == 0 {
		return fmt.Errorf("core: query %d has no frames", id)
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if _, dup := qs.view().queries[id]; dup {
		return fmt.Errorf("core: query id %d already subscribed", id)
	}
	q := &queryInfo{
		id:      id,
		frames:  len(cellIDs),
		sketch:  qs.fam.SketchSet(cellIDs),
		cellIDs: append([]uint64(nil), cellIDs...),
	}
	np := qs.begin()
	if err := qs.insert(np, q); err != nil {
		return err
	}
	qs.publish(np)
	return nil
}

// insert wires an already-sketched query into a not-yet-published plane,
// cloning the index and filter it mutates; callers hold mu.
func (qs *QuerySet) insert(np *queryPlane, q *queryInfo) error {
	iq := qindex.Query{ID: q.id, Length: q.frames, Sketch: q.sketch}
	if qs.useIndex {
		if np.index == nil {
			idx, err := qindex.Build([]qindex.Query{iq})
			if err != nil {
				return err
			}
			np.index, np.ownedIndex = idx, true
		} else {
			if !np.ownedIndex {
				np.index, np.ownedIndex = np.index.Clone(), true
			}
			if err := np.index.Add(iq); err != nil {
				return err
			}
		}
	}
	np.queries[q.id] = q
	np.scan.Queries = append(np.scan.Queries, iq)
	if np.preFilter {
		if np.pf == nil || np.pf.NeedsRebuild() {
			qs.rebuildPreFilter(np)
		} else {
			if !np.ownedPF {
				np.pf, np.ownedPF = np.pf.Clone(), true
			}
			np.pf.AddSketch(q.sketch)
		}
	}
	return nil
}

// AddBatch subscribes many queries in one operation. The Hash-Query index
// is rebuilt once with a bulk Build — O(K·m log m) for the whole batch
// instead of the O(K·m) slice insertions per query the incremental path
// pays (O(K·m²) total), which is the difference between seconds and hours
// at the 10⁵–10⁶ query scale the pre-filter tier targets. The batch is
// validated before any mutation, so an error leaves the set unchanged, and
// the whole batch lands as a single new plane version.
func (qs *QuerySet) AddBatch(ids []int, cellIDs [][]uint64) error {
	if len(ids) != len(cellIDs) {
		return fmt.Errorf("core: AddBatch got %d ids but %d queries", len(ids), len(cellIDs))
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	cur := qs.view()
	seen := make(map[int]bool, len(ids))
	for i, id := range ids {
		if len(cellIDs[i]) == 0 {
			return fmt.Errorf("core: query %d has no frames", id)
		}
		if seen[id] {
			return fmt.Errorf("core: query id %d duplicated in batch", id)
		}
		if _, dup := cur.queries[id]; dup {
			return fmt.Errorf("core: query id %d already subscribed", id)
		}
		seen[id] = true
	}
	np := qs.begin()
	batch := make([]*queryInfo, len(ids))
	all := np.scan.Queries
	for i, id := range ids {
		q := &queryInfo{
			id:      id,
			frames:  len(cellIDs[i]),
			sketch:  qs.fam.SketchSet(cellIDs[i]),
			cellIDs: append([]uint64(nil), cellIDs[i]...),
		}
		batch[i] = q
		all = append(all, qindex.Query{ID: q.id, Length: q.frames, Sketch: q.sketch})
	}
	if qs.useIndex && len(all) > 0 {
		idx, err := qindex.Build(all)
		if err != nil {
			return err
		}
		np.index = idx
	}
	for _, q := range batch {
		np.queries[q.id] = q
	}
	np.scan.Queries = all
	if np.preFilter {
		qs.rebuildPreFilter(np)
	}
	qs.publish(np)
	return nil
}

// Remove unsubscribes a query. Like Add, the removal lands as a new plane
// version: candidates tracking the query on engines mid-window finish
// their window against the old plane and drop it at their next one.
func (qs *QuerySet) Remove(id int) error {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if _, ok := qs.view().queries[id]; !ok {
		return fmt.Errorf("core: query id %d not subscribed", id)
	}
	np := qs.begin()
	delete(np.queries, id)
	for i, q := range np.scan.Queries {
		if q.ID == id {
			np.scan.Queries = append(np.scan.Queries[:i], np.scan.Queries[i+1:]...)
			break
		}
	}
	if np.index != nil {
		idx := np.index.Clone()
		if err := idx.Remove(id); err != nil {
			return err
		}
		np.index, np.ownedIndex = idx, true
	}
	if np.preFilter && np.pf != nil {
		// Bloom bits are shared, so removal only marks keys dead; rebuild
		// from the authoritative list once staleness trips the threshold.
		pf := np.pf.Clone()
		pf.RemoveKeys(qs.k)
		np.pf, np.ownedPF = pf, true
		if pf.NeedsRebuild() {
			qs.rebuildPreFilter(np)
		}
	}
	qs.publish(np)
	return nil
}

// EnablePreFilter turns the Bloom tier on for this set (idempotent). The
// filter is built from the current subscriptions; subsequent Add/Remove
// keep it consistent through the copy-on-write plane.
func (qs *QuerySet) EnablePreFilter() {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if qs.view().preFilter {
		return
	}
	np := qs.begin()
	np.preFilter = true
	qs.rebuildPreFilter(np)
	qs.publish(np)
}

// rebuildPreFilter reconstructs the plane's filter from its authoritative
// query list, sized with ~25% headroom so steady churn doesn't rebuild
// every insert; callers hold mu and own np (not yet published).
func (qs *QuerySet) rebuildPreFilter(np *queryPlane) {
	n := len(np.scan.Queries)
	pf := prefilter.New((n+n/4+4)*qs.k, 0)
	for _, iq := range np.scan.Queries {
		pf.AddSketch(iq.Sketch)
	}
	np.pf, np.ownedPF = pf, true
	qs.pfRebuilds.Add(1)
	telPrefilterRebuilds.Inc()
}

// publishPreFilterGauges refreshes the tier's memory-accounting gauges.
// Gauge stores are single atomics, so doing this on every churn operation
// is free relative to the O(K) filter work.
func (qs *QuerySet) publishPreFilterGauges(np *queryPlane) {
	if np.pf == nil {
		return
	}
	b := float64(np.pf.Bytes())
	telPrefilterBytes.Set(b)
	if n := len(np.queries); n > 0 {
		telPrefilterBytesPerQuery.Set(b / float64(n))
	} else {
		telPrefilterBytesPerQuery.Set(0)
	}
}

// preFilterStats returns the tier's memory accounting: filter bytes, live
// keys, rebuild count and whether the tier is active.
func (qs *QuerySet) preFilterStats() (bytes, keys int, rebuilds int64, enabled bool) {
	v := qs.view()
	if !v.preFilter || v.pf == nil {
		return 0, 0, qs.pfRebuilds.Load(), v.preFilter
	}
	return v.pf.Bytes(), v.pf.Keys(), qs.pfRebuilds.Load(), true
}

// Serialisation format "VQS1": K, seed, useIndex, count, then per query
// id, length and K raw sketch values — everything needed to reconstruct
// the set (the index is rebuilt on load, which the paper treats as an
// offline step anyway).
var qsMagic = [4]byte{'V', 'Q', 'S', '1'}

// ErrBadQuerySet is returned by LoadQuerySet on malformed input.
var ErrBadQuerySet = errors.New("core: not a VQS1 query-set stream")

// Save writes the query set to w. The snapshot is one consistent plane:
// concurrent churn lands in the next version and is not torn across the
// written stream.
func (qs *QuerySet) Save(w io.Writer) error {
	v := qs.view()
	var hdr [25]byte
	copy(hdr[:4], qsMagic[:])
	binary.BigEndian.PutUint32(hdr[4:], uint32(qs.k))
	binary.BigEndian.PutUint64(hdr[8:], uint64(qs.seed))
	if qs.useIndex {
		hdr[16] = 1
	}
	binary.BigEndian.PutUint64(hdr[17:], uint64(len(v.queries)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	// Deterministic order via the scan list (insertion order).
	for _, iq := range v.scan.Queries {
		var qh [16]byte
		binary.BigEndian.PutUint64(qh[:8], uint64(iq.ID))
		binary.BigEndian.PutUint64(qh[8:], uint64(iq.Length))
		if _, err := w.Write(qh[:]); err != nil {
			return err
		}
		buf := make([]byte, 8*len(iq.Sketch))
		for i, val := range iq.Sketch {
			binary.BigEndian.PutUint64(buf[i*8:], val)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadQuerySet reconstructs a query set saved with Save, rebuilding the
// Hash-Query index through the same insertion sequence.
func LoadQuerySet(r io.Reader) (*QuerySet, error) {
	var hdr [25]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: reading query-set header: %w", err)
	}
	if [4]byte(hdr[:4]) != qsMagic {
		return nil, ErrBadQuerySet
	}
	k := int(binary.BigEndian.Uint32(hdr[4:]))
	seed := int64(binary.BigEndian.Uint64(hdr[8:]))
	useIndex := hdr[16] == 1
	count := binary.BigEndian.Uint64(hdr[17:])
	if count > 1<<20 {
		return nil, fmt.Errorf("core: implausible query count %d", count)
	}
	qs, err := NewQuerySet(k, seed, useIndex)
	if err != nil {
		return nil, err
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	np := qs.begin()
	for n := uint64(0); n < count; n++ {
		var qh [16]byte
		if _, err := io.ReadFull(r, qh[:]); err != nil {
			return nil, fmt.Errorf("core: reading query %d: %w", n, err)
		}
		id := int(binary.BigEndian.Uint64(qh[:8]))
		length := int(binary.BigEndian.Uint64(qh[8:]))
		if length <= 0 {
			return nil, fmt.Errorf("core: query %d has non-positive length", id)
		}
		buf := make([]byte, 8*k)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("core: reading query %d sketch: %w", id, err)
		}
		sk := make(minhash.Sketch, k)
		for i := range sk {
			sk[i] = binary.BigEndian.Uint64(buf[i*8:])
		}
		if _, dup := np.queries[id]; dup {
			return nil, fmt.Errorf("core: query id %d duplicated in stream", id)
		}
		if err := qs.insert(np, &queryInfo{id: id, frames: length, sketch: sk}); err != nil {
			return nil, err
		}
	}
	qs.publish(np)
	return qs, nil
}

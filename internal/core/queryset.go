package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"vdsms/internal/minhash"
	"vdsms/internal/prefilter"
	"vdsms/internal/qindex"
)

// QuerySet holds the subscribed continuous queries — sketches, lengths and
// the Hash-Query index — independently of any stream. Multiple Engines
// (one per monitored stream, the paper's "many concurrent video streams"
// setting) can share one QuerySet: probing is read-only, so monitoring
// goroutines proceed in parallel, while Add/Remove take the write lock and
// apply to every sharing engine at its next window.
//
// All sharers see the same hash family, so sketches are comparable by
// construction.
type QuerySet struct {
	mu       sync.RWMutex
	fam      *minhash.Family
	k        int
	seed     int64
	useIndex bool
	queries  map[int]*queryInfo
	index    *qindex.Index // nil until first query when useIndex
	scan     qindex.Scan
	// preFilter/pf implement the opt-in Bloom tier: pf summarises the key
	// set {(row, sketch[row]) : subscribed query} and is kept consistent
	// with churn by rebuild-on-threshold (see internal/prefilter). nil
	// until EnablePreFilter; rebuilds count in pfRebuilds.
	preFilter  bool
	pf         *prefilter.Filter
	pfRebuilds int64
	// cur is the immutable snapshot used by window processing: engines (and
	// their worker shards) read query state lock-free and see one
	// consistent subscription set per window. Add/Remove publish a fresh
	// snapshot under the write lock; the copy is O(m), dominated by the
	// O(K·m) index maintenance those paths already pay.
	cur atomic.Pointer[queryView]
}

// queryView is an immutable snapshot of the subscription state. queryInfo
// values are never mutated after insertion, so sharing them is safe.
type queryView struct {
	queries   map[int]*queryInfo
	maxFrames int
}

// lookup returns the snapshot's query with the given id, or nil.
func (v *queryView) lookup(id int) *queryInfo { return v.queries[id] }

// rebuildView publishes a fresh snapshot; callers hold the write lock.
func (qs *QuerySet) rebuildView() {
	v := &queryView{queries: make(map[int]*queryInfo, len(qs.queries))}
	for id, q := range qs.queries {
		v.queries[id] = q
		if q.frames > v.maxFrames {
			v.maxFrames = q.frames
		}
	}
	qs.cur.Store(v)
}

// view returns the current immutable snapshot (never nil).
func (qs *QuerySet) view() *queryView { return qs.cur.Load() }

// NewQuerySet builds an empty query set with K hash functions drawn from
// seed. useIndex selects Hash-Query-index probing over linear scans.
func NewQuerySet(k int, seed int64, useIndex bool) (*QuerySet, error) {
	fam, err := minhash.NewFamily(k, seed)
	if err != nil {
		return nil, err
	}
	qs := &QuerySet{
		fam:      fam,
		k:        k,
		seed:     seed,
		useIndex: useIndex,
		queries:  make(map[int]*queryInfo),
	}
	qs.rebuildView()
	return qs, nil
}

// K returns the number of hash functions.
func (qs *QuerySet) K() int { return qs.k }

// Family exposes the shared hash family.
func (qs *QuerySet) Family() *minhash.Family { return qs.fam }

// Len returns the number of subscribed queries.
func (qs *QuerySet) Len() int {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	return len(qs.queries)
}

// IDs returns the subscribed query ids (unordered).
func (qs *QuerySet) IDs() []int {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	out := make([]int, 0, len(qs.queries))
	for id := range qs.queries {
		out = append(out, id)
	}
	return out
}

// Add subscribes a query given the cell ids of its key frames.
func (qs *QuerySet) Add(id int, cellIDs []uint64) error {
	if len(cellIDs) == 0 {
		return fmt.Errorf("core: query %d has no frames", id)
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if _, dup := qs.queries[id]; dup {
		return fmt.Errorf("core: query id %d already subscribed", id)
	}
	q := &queryInfo{
		id:      id,
		frames:  len(cellIDs),
		sketch:  qs.fam.SketchSet(cellIDs),
		cellIDs: append([]uint64(nil), cellIDs...),
	}
	return qs.insert(q)
}

// insert wires an already-sketched query in; callers hold the write lock.
func (qs *QuerySet) insert(q *queryInfo) error {
	iq := qindex.Query{ID: q.id, Length: q.frames, Sketch: q.sketch}
	if qs.useIndex {
		if qs.index == nil {
			idx, err := qindex.Build([]qindex.Query{iq})
			if err != nil {
				return err
			}
			qs.index = idx
		} else if err := qs.index.Add(iq); err != nil {
			return err
		}
	}
	qs.queries[q.id] = q
	qs.scan.Queries = append(qs.scan.Queries, iq)
	if qs.preFilter {
		if qs.pf == nil || qs.pf.NeedsRebuild() {
			qs.rebuildPreFilter()
		} else {
			qs.pf.AddSketch(q.sketch)
		}
		qs.publishPreFilterGauges()
	}
	qs.rebuildView()
	return nil
}

// AddBatch subscribes many queries in one operation. The Hash-Query index
// is rebuilt once with a bulk Build — O(K·m log m) for the whole batch
// instead of the O(K·m) slice insertions per query the incremental path
// pays (O(K·m²) total), which is the difference between seconds and hours
// at the 10⁵–10⁶ query scale the pre-filter tier targets. The batch is
// validated before any mutation, so an error leaves the set unchanged.
func (qs *QuerySet) AddBatch(ids []int, cellIDs [][]uint64) error {
	if len(ids) != len(cellIDs) {
		return fmt.Errorf("core: AddBatch got %d ids but %d queries", len(ids), len(cellIDs))
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	seen := make(map[int]bool, len(ids))
	for i, id := range ids {
		if len(cellIDs[i]) == 0 {
			return fmt.Errorf("core: query %d has no frames", id)
		}
		if seen[id] {
			return fmt.Errorf("core: query id %d duplicated in batch", id)
		}
		if _, dup := qs.queries[id]; dup {
			return fmt.Errorf("core: query id %d already subscribed", id)
		}
		seen[id] = true
	}
	batch := make([]*queryInfo, len(ids))
	all := append([]qindex.Query(nil), qs.scan.Queries...)
	for i, id := range ids {
		q := &queryInfo{
			id:      id,
			frames:  len(cellIDs[i]),
			sketch:  qs.fam.SketchSet(cellIDs[i]),
			cellIDs: append([]uint64(nil), cellIDs[i]...),
		}
		batch[i] = q
		all = append(all, qindex.Query{ID: q.id, Length: q.frames, Sketch: q.sketch})
	}
	if qs.useIndex && len(all) > 0 {
		idx, err := qindex.Build(all)
		if err != nil {
			return err
		}
		qs.index = idx
	}
	for _, q := range batch {
		qs.queries[q.id] = q
	}
	qs.scan.Queries = all
	if qs.preFilter {
		qs.rebuildPreFilter()
		qs.publishPreFilterGauges()
	}
	qs.rebuildView()
	return nil
}

// Remove unsubscribes a query.
func (qs *QuerySet) Remove(id int) error {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if _, ok := qs.queries[id]; !ok {
		return fmt.Errorf("core: query id %d not subscribed", id)
	}
	delete(qs.queries, id)
	for i, q := range qs.scan.Queries {
		if q.ID == id {
			qs.scan.Queries = append(qs.scan.Queries[:i], qs.scan.Queries[i+1:]...)
			break
		}
	}
	if qs.preFilter && qs.pf != nil {
		// Bloom bits are shared, so removal only marks keys dead; rebuild
		// from the authoritative list once staleness trips the threshold.
		qs.pf.RemoveKeys(qs.k)
		if qs.pf.NeedsRebuild() {
			qs.rebuildPreFilter()
		}
		qs.publishPreFilterGauges()
	}
	qs.rebuildView()
	if qs.useIndex && qs.index != nil {
		return qs.index.Remove(id)
	}
	return nil
}

// EnablePreFilter turns the Bloom tier on for this set (idempotent). The
// filter is built from the current subscriptions; subsequent Add/Remove
// keep it consistent under the write lock.
func (qs *QuerySet) EnablePreFilter() {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if qs.preFilter {
		return
	}
	qs.preFilter = true
	qs.rebuildPreFilter()
	qs.publishPreFilterGauges()
}

// rebuildPreFilter reconstructs the filter from the authoritative query
// list, sized with ~25% headroom so steady churn doesn't rebuild every
// insert; callers hold the write lock.
func (qs *QuerySet) rebuildPreFilter() {
	n := len(qs.scan.Queries)
	qs.pf = prefilter.New((n+n/4+4)*qs.k, 0)
	for _, iq := range qs.scan.Queries {
		qs.pf.AddSketch(iq.Sketch)
	}
	qs.pfRebuilds++
	telPrefilterRebuilds.Inc()
}

// publishPreFilterGauges refreshes the tier's memory-accounting gauges;
// callers hold the write lock. Gauge stores are single atomics, so doing
// this on every churn operation is free relative to the O(K) filter work.
func (qs *QuerySet) publishPreFilterGauges() {
	if qs.pf == nil {
		return
	}
	b := float64(qs.pf.Bytes())
	telPrefilterBytes.Set(b)
	if n := len(qs.queries); n > 0 {
		telPrefilterBytesPerQuery.Set(b / float64(n))
	} else {
		telPrefilterBytesPerQuery.Set(0)
	}
}

// preFilterStats returns the tier's memory accounting: filter bytes, live
// keys, rebuild count and whether the tier is active.
func (qs *QuerySet) preFilterStats() (bytes, keys int, rebuilds int64, enabled bool) {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	if !qs.preFilter || qs.pf == nil {
		return 0, 0, qs.pfRebuilds, qs.preFilter
	}
	return qs.pf.Bytes(), qs.pf.Keys(), qs.pfRebuilds, true
}

// windowRowMask computes the pre-filter admission mask for one window
// sketch: row i is admitted iff the filter may hold (i, sk[i]). Returns a
// nil mask (admit all) when the tier is off or probing is not indexed.
// rejected counts the rows dropped — each one saves a binary search and
// rejects every candidate query at that hash position in O(1).
func (qs *QuerySet) windowRowMask(sk minhash.Sketch) (mask qindex.RowMask, probed, rejected int) {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	if !qs.preFilter || qs.pf == nil || !qs.useIndex || qs.index == nil {
		return nil, 0, 0
	}
	mask = qindex.NewRowMask(len(sk))
	for i, v := range sk {
		probed++
		if qs.pf.MayContain(i, v) {
			mask.Set(i)
		} else {
			rejected++
		}
	}
	return mask, probed, rejected
}

// usingIndex reports whether probing goes through the Hash-Query index.
func (qs *QuerySet) usingIndex() bool {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	return qs.useIndex && qs.index != nil
}

// probeShard runs the configured prober for one query shard under the read
// lock. Shard outputs and scan counts partition the full probe's exactly
// (see qindex.ShardOf), so per-window stats are worker-count invariant.
func (qs *QuerySet) probeShard(sk minhash.Sketch, delta float64, shard, nshards int, mask qindex.RowMask) (qindex.ProbeOutput, int) {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	if qs.useIndex && qs.index != nil {
		return qs.index.ProbeShardMasked(sk, delta, shard, nshards, mask), 0
	}
	return qs.scan.ProbeShard(sk, delta, shard, nshards)
}

// Serialisation format "VQS1": K, seed, useIndex, count, then per query
// id, length and K raw sketch values — everything needed to reconstruct
// the set (the index is rebuilt on load, which the paper treats as an
// offline step anyway).
var qsMagic = [4]byte{'V', 'Q', 'S', '1'}

// ErrBadQuerySet is returned by LoadQuerySet on malformed input.
var ErrBadQuerySet = errors.New("core: not a VQS1 query-set stream")

// Save writes the query set to w.
func (qs *QuerySet) Save(w io.Writer) error {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	var hdr [25]byte
	copy(hdr[:4], qsMagic[:])
	binary.BigEndian.PutUint32(hdr[4:], uint32(qs.k))
	binary.BigEndian.PutUint64(hdr[8:], uint64(qs.seed))
	if qs.useIndex {
		hdr[16] = 1
	}
	binary.BigEndian.PutUint64(hdr[17:], uint64(len(qs.queries)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	// Deterministic order via the scan list (insertion order).
	for _, iq := range qs.scan.Queries {
		var qh [16]byte
		binary.BigEndian.PutUint64(qh[:8], uint64(iq.ID))
		binary.BigEndian.PutUint64(qh[8:], uint64(iq.Length))
		if _, err := w.Write(qh[:]); err != nil {
			return err
		}
		buf := make([]byte, 8*len(iq.Sketch))
		for i, v := range iq.Sketch {
			binary.BigEndian.PutUint64(buf[i*8:], v)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadQuerySet reconstructs a query set saved with Save, rebuilding the
// Hash-Query index.
func LoadQuerySet(r io.Reader) (*QuerySet, error) {
	var hdr [25]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: reading query-set header: %w", err)
	}
	if [4]byte(hdr[:4]) != qsMagic {
		return nil, ErrBadQuerySet
	}
	k := int(binary.BigEndian.Uint32(hdr[4:]))
	seed := int64(binary.BigEndian.Uint64(hdr[8:]))
	useIndex := hdr[16] == 1
	count := binary.BigEndian.Uint64(hdr[17:])
	if count > 1<<20 {
		return nil, fmt.Errorf("core: implausible query count %d", count)
	}
	qs, err := NewQuerySet(k, seed, useIndex)
	if err != nil {
		return nil, err
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	for n := uint64(0); n < count; n++ {
		var qh [16]byte
		if _, err := io.ReadFull(r, qh[:]); err != nil {
			return nil, fmt.Errorf("core: reading query %d: %w", n, err)
		}
		id := int(binary.BigEndian.Uint64(qh[:8]))
		length := int(binary.BigEndian.Uint64(qh[8:]))
		if length <= 0 {
			return nil, fmt.Errorf("core: query %d has non-positive length", id)
		}
		buf := make([]byte, 8*k)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("core: reading query %d sketch: %w", id, err)
		}
		sk := make(minhash.Sketch, k)
		for i := range sk {
			sk[i] = binary.BigEndian.Uint64(buf[i*8:])
		}
		if err := qs.insert(&queryInfo{id: id, frames: length, sketch: sk}); err != nil {
			return nil, err
		}
	}
	return qs, nil
}

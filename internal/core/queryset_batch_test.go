package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestAddBatchMatchesIncremental: batch subscription must be functionally
// indistinguishable from per-query AddQuery — same matches on the same
// stream — for indexed, unindexed and pre-filtered engines.
func TestAddBatchMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	queries := make([][]uint64, 9)
	ids := make([]int, len(queries))
	for i := range queries {
		queries[i] = idStream(rng, i+1, 30+5*i)
		ids[i] = i + 1
	}
	var stream []uint64
	stream = append(stream, idStream(rng, 40, 70)...)
	stream = append(stream, queries[4]...)
	stream = append(stream, idStream(rng, 41, 50)...)
	stream = append(stream, queries[1]...)
	stream = append(stream, idStream(rng, 42, 50)...)

	for _, v := range []variant{
		{"bit-seq-index", Bit, Sequential, true, false},
		{"bit-seq-noindex", Bit, Sequential, false, false},
		{"bit-seq-prefilter", Bit, Sequential, true, true},
	} {
		t.Run(v.name, func(t *testing.T) {
			run := func(batch bool) []Match {
				e := newTestEngine(t, v, 128, 0.5, 10)
				if batch {
					if err := e.AddQueries(ids, queries); err != nil {
						t.Fatal(err)
					}
				} else {
					for i, q := range queries {
						if err := e.AddQuery(ids[i], q); err != nil {
							t.Fatal(err)
						}
					}
				}
				e.PushFrames(stream)
				e.Flush()
				return e.Matches
			}
			inc, bat := run(false), run(true)
			if len(inc) == 0 {
				t.Fatal("workload produced no matches")
			}
			if !reflect.DeepEqual(inc, bat) {
				t.Errorf("batch subscription diverges\nincremental: %+v\nbatch:       %+v", inc, bat)
			}
		})
	}
}

// TestAddBatchErrors: invalid batches must be rejected atomically — no
// partial subscription.
func TestAddBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	q1 := idStream(rng, 1, 30)
	q2 := idStream(rng, 2, 30)
	e := newTestEngine(t, variants[0], 64, 0.5, 10)
	if err := e.AddQuery(1, q1); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		ids     []int
		queries [][]uint64
	}{
		{"length mismatch", []int{2, 3}, [][]uint64{q2}},
		{"duplicate within batch", []int{2, 2}, [][]uint64{q2, q2}},
		{"duplicate with existing", []int{1}, [][]uint64{q2}},
		{"empty query", []int{2, 3}, [][]uint64{q2, {}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := e.AddQueries(tc.ids, tc.queries); err == nil {
				t.Fatal("invalid batch accepted")
			}
			if got := e.NumQueries(); got != 1 {
				t.Fatalf("failed batch left %d queries subscribed, want 1", got)
			}
		})
	}
	// A valid batch still lands after the failures.
	if err := e.AddQueries([]int{2}, [][]uint64{q2}); err != nil {
		t.Fatal(err)
	}
	if e.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d, want 2", e.NumQueries())
	}
}

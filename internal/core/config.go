// Package core implements the paper's streaming copy-detection engine
// (Sections IV and V): the incoming stream of per-key-frame cell ids is cut
// into basic windows of w frames; each window is min-hash sketched, probed
// against the continuous queries, and folded into the candidate-sequence
// list C_L under a Sequential or Geometric combination order. Candidates
// are compared to queries either by raw sketch operations (Sketch method)
// or by the 2K-bit vector signatures of Section V (Bit method), with the
// Lemma 2 prune and the Hash-Query index optionally enabled. Matches are
// reported whenever a candidate reaches similarity δ against a query.
package core

import (
	"fmt"
	"math"
)

// Order selects the candidate combination order of Section IV.A.
type Order int

const (
	// Sequential maintains every suffix candidate of size 1..⌈λL/w⌉.
	Sequential Order = iota
	// Geometric maintains O(log) candidates with geometrically growing
	// sizes, testing ⌈log i⌉ combinations per arriving window.
	Geometric
)

// String implements fmt.Stringer.
func (o Order) String() string {
	if o == Geometric {
		return "geometric"
	}
	return "sequential"
}

// Method selects the candidate/query comparison representation.
type Method int

const (
	// Bit uses the 2K-bit vector signatures of Section V.
	Bit Method = iota
	// Sketch uses raw K-value sketch comparison and combination.
	Sketch
)

// String implements fmt.Stringer.
func (m Method) String() string {
	if m == Sketch {
		return "sketch"
	}
	return "bit"
}

// Config parameterises an Engine. The zero value is not usable; call
// (*Config).Default() or fill the fields and Validate.
type Config struct {
	// K is the number of min-hash functions (paper default 800).
	K int
	// Seed fixes the hash family. Queries and streams must be processed by
	// engines sharing (K, Seed).
	Seed int64
	// Delta is the similarity threshold δ (paper default 0.7).
	Delta float64
	// Lambda bounds candidate length to λL for a query of length L
	// (paper: optimal tempo scaling λ ≤ 2).
	Lambda float64
	// WindowFrames is the basic window size w in key frames.
	WindowFrames int
	// Order is the candidate combination order.
	Order Order
	// Method is the comparison representation.
	Method Method
	// UseIndex enables the Hash-Query index; otherwise every window is
	// compared to every query (the NoIndex baselines of Fig. 9).
	UseIndex bool
	// DisablePrune turns off the Lemma 2 prune (ablation only).
	DisablePrune bool
	// Workers sets the intra-stream parallelism of the per-window matching
	// kernel. 0 runs the kernel inline on the pushing goroutine (the
	// original serial behaviour); N >= 1 partitions the queries into N
	// shards evaluated by N goroutines per window (the pusher counts as
	// one). Matches, match order and Stats totals are identical for every
	// value — see DESIGN.md "Parallel matching".
	Workers int
	// PreFilter enables the blocked-Bloom pre-filter tier
	// (internal/prefilter) in front of the Hash-Query index: each window's
	// per-row equal searches are first tested against a compact membership
	// filter and rejected in O(1) when no query can hold the value. Match
	// output is byte-identical with the tier on or off (the filter has no
	// false negatives); only probe cost changes. Requires UseIndex — see
	// DESIGN.md "Pre-filter tier".
	PreFilter bool
}

// Default returns the paper's default parameters (Table I) with a basic
// window of w key frames.
func Default(windowFrames int) Config {
	return Config{
		K:            800,
		Delta:        0.7,
		Lambda:       2,
		WindowFrames: windowFrames,
		Order:        Sequential,
		Method:       Bit,
		UseIndex:     true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("core: K=%d must be positive", c.K)
	}
	if c.Delta <= 0 || c.Delta > 1 {
		return fmt.Errorf("core: δ=%g out of (0,1]", c.Delta)
	}
	if c.Lambda < 1 {
		return fmt.Errorf("core: λ=%g must be >= 1", c.Lambda)
	}
	if c.WindowFrames <= 0 {
		return fmt.Errorf("core: window of %d frames", c.WindowFrames)
	}
	switch c.Order {
	case Sequential, Geometric:
	default:
		return fmt.Errorf("core: unknown order %d", c.Order)
	}
	switch c.Method {
	case Bit, Sketch:
	default:
		return fmt.Errorf("core: unknown method %d", c.Method)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers=%d must be >= 0", c.Workers)
	}
	if c.PreFilter && !c.UseIndex {
		return fmt.Errorf("core: PreFilter requires UseIndex (the tier masks Hash-Query row probes)")
	}
	return nil
}

// maxWindows returns ⌈λL/w⌉ for a query of length L frames.
func (c Config) maxWindows(queryFrames int) int {
	return int(math.Ceil(c.Lambda * float64(queryFrames) / float64(c.WindowFrames)))
}

// Match is one detected copy.
type Match struct {
	// QueryID identifies the matched continuous query.
	QueryID int
	// StartFrame and EndFrame delimit the matching candidate sequence in
	// key-frame indices of the monitored stream (inclusive start, exclusive
	// end).
	StartFrame, EndFrame int
	// DetectedAt is the key-frame index at which the match was reported
	// (the end of the window that completed the candidate).
	DetectedAt int
	// Similarity is the estimated Jaccard similarity at detection time.
	Similarity float64
	// Windows is the candidate size in basic windows.
	Windows int
}

// Stats aggregates the engine's operation counters. Sketch operations are
// O(K) array scans; signature operations are O(K/64) word scans — the
// distinction behind the Fig. 6 CPU curves.
type Stats struct {
	Frames  int // key frames consumed
	Windows int // basic windows processed
	// SketchCombines and SketchCompares count O(K) sketch operations.
	SketchCombines, SketchCompares int64
	// SigOrs and SigTests count bit-signature operations.
	SigOrs, SigTests int64
	// ProbeComparisons accumulates value comparisons inside probing.
	ProbeComparisons int64
	// SignatureSum sums, over windows, the number of bit signatures alive
	// in C_L after processing the window; AvgSignatures() is the paper's
	// Fig. 10 memory metric.
	SignatureSum int64
	// CandidateSum sums live candidates per window.
	CandidateSum int64
	// Matches counts reported matches.
	Matches int
	// Shards holds the per-shard counters of the parallel matching kernel,
	// one entry per query shard (a single entry when running serially). The
	// per-query totals they partition are worker-count invariant, so the
	// spread across entries is a direct read on parallel efficiency.
	Shards []ShardStats
}

// ShardStats aggregates the per-window work one query shard performed:
// probe yield, Lemma 2 prunes and similarity evaluations. Balanced Compared
// counts across shards mean the worker pool divides the per-window cost
// evenly; a skewed spread shows query hot spots.
type ShardStats struct {
	// Probed counts related queries surfaced by this shard's probes.
	Probed int64
	// Pruned counts Lemma 2 prunes, during probing and during candidate
	// extension.
	Pruned int64
	// Compared counts similarity evaluations (signature tests plus sketch
	// comparisons) performed by this shard.
	Compared int64
}

// Totals returns the stats with the per-shard breakdown stripped. All
// remaining fields are worker-count invariant: a serial and a parallel run
// over the same input report equal Totals.
func (s Stats) Totals() Stats {
	s.Shards = nil
	return s
}

// AvgSignatures is the average number of bit signatures maintained per
// window (Fig. 10's n).
func (s Stats) AvgSignatures() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.SignatureSum) / float64(s.Windows)
}

// AvgCandidates is the average number of live candidate sequences.
func (s Stats) AvgCandidates() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.CandidateSum) / float64(s.Windows)
}

package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The parallel matching kernel promises byte-for-byte agreement with the
// serial path: the same stream must produce the same Matches slice (order
// included) and the same Stats totals for every Workers value. These tests
// pin that contract across all method/order/index variants.

// detRun pushes a fixed multi-query workload through one engine
// configuration and returns its matches and stats.
func detRun(t *testing.T, v variant, workers int, batch bool) ([]Match, Stats) {
	t.Helper()
	cfg := Config{
		K: 192, Seed: 5, Delta: 0.5, Lambda: 2, WindowFrames: 10,
		Order: v.order, Method: v.method, UseIndex: v.useIndex,
		PreFilter: v.prefilter, Workers: workers,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	queries := make([][]uint64, 7)
	for i := range queries {
		queries[i] = idStream(rng, i+1, 40+10*i)
		if err := e.AddQuery(i+1, queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Stream: background, then copies of several queries separated by more
	// background, so windows relate to overlapping query subsets.
	var stream []uint64
	stream = append(stream, idStream(rng, 50, 95)...)
	for _, qi := range []int{2, 0, 5, 3} {
		stream = append(stream, queries[qi]...)
		stream = append(stream, idStream(rng, 60+qi, 57)...)
	}
	if batch {
		e.PushFrames(stream)
	} else {
		for _, id := range stream {
			e.PushFrame(id)
		}
	}
	e.Flush()
	return e.Matches, e.Stats()
}

// TestParallelMatchesSerial: Workers ∈ {1, 4, 8} must reproduce the serial
// (Workers=0) match list exactly — same matches, same order — and equal
// stats totals, for every variant.
func TestParallelMatchesSerial(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			wantM, wantS := detRun(t, v, 0, false)
			if len(wantM) == 0 {
				t.Fatal("serial run found no matches; workload is too weak to test anything")
			}
			for _, workers := range []int{1, 4, 8} {
				gotM, gotS := detRun(t, v, workers, false)
				if !reflect.DeepEqual(gotM, wantM) {
					t.Errorf("Workers=%d: matches diverge from serial\nserial:   %+v\nparallel: %+v",
						workers, wantM, gotM)
				}
				if !reflect.DeepEqual(gotS.Totals(), wantS.Totals()) {
					t.Errorf("Workers=%d: stats totals diverge from serial\nserial:   %+v\nparallel: %+v",
						workers, wantS.Totals(), gotS.Totals())
				}
			}
		})
	}
}

// TestPushFramesMatchesPushFrame: the batched entry point must be
// indistinguishable from per-frame pushing, serial and parallel.
func TestPushFramesMatchesPushFrame(t *testing.T) {
	for _, v := range variants {
		for _, workers := range []int{0, 4} {
			t.Run(fmt.Sprintf("%s/w%d", v.name, workers), func(t *testing.T) {
				wantM, wantS := detRun(t, v, workers, false)
				gotM, gotS := detRun(t, v, workers, true)
				if !reflect.DeepEqual(gotM, wantM) {
					t.Errorf("batched matches diverge from per-frame:\nper-frame: %+v\nbatched:   %+v", wantM, gotM)
				}
				if !reflect.DeepEqual(gotS, wantS) {
					t.Errorf("batched stats diverge from per-frame:\nper-frame: %+v\nbatched:   %+v", wantS, gotS)
				}
			})
		}
	}
}

// TestShardStatsPartition: per-shard counters must sum to the serial run's
// single-shard counters — the parallel kernel partitions work, never
// duplicates it (Sketch-method geometric combines are spine work and are
// excluded from per-shard counters by design).
func TestShardStatsPartition(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			_, serial := detRun(t, v, 0, false)
			if len(serial.Shards) != 1 {
				t.Fatalf("serial run has %d shard entries, want 1", len(serial.Shards))
			}
			for _, workers := range []int{4, 8} {
				_, par := detRun(t, v, workers, false)
				if len(par.Shards) != workers {
					t.Fatalf("Workers=%d: %d shard entries", workers, len(par.Shards))
				}
				var sum ShardStats
				busy := 0
				for _, sh := range par.Shards {
					sum.Probed += sh.Probed
					sum.Pruned += sh.Pruned
					sum.Compared += sh.Compared
					if sh.Compared > 0 {
						busy++
					}
				}
				if sum != serial.Shards[0] {
					t.Errorf("Workers=%d: shard counters sum to %+v, serial shard is %+v",
						workers, sum, serial.Shards[0])
				}
				if busy < 2 {
					t.Errorf("Workers=%d: only %d shards did comparison work; queries are not spreading", workers, busy)
				}
			}
		})
	}
}

package core

import (
	"vdsms/internal/bitsig"
	"vdsms/internal/minhash"
	"vdsms/internal/trace"
)

// geoBucket is one stored candidate of the Geometric order: a contiguous
// chunk of basic windows whose sketch (and, for the Bit method, per-query
// signatures) have been pre-combined. The stored buckets form a binary
// counter — sizes grow geometrically from newest to oldest — so an arriving
// window only touches ⌈log i⌉ of them (paper Figures 2 and 3).
//
// Under the parallel kernel every shard maintains its own replica of the
// bucket list. Bucket boundaries, merges and expiry depend only on window
// counts and the global λL bound — never on query content — so the
// replicas' structures stay congruent; each replica's maps hold only the
// owning shard's queries.
type geoBucket struct {
	startFrame, endFrame int
	windows              int
	// Sketch method state: combined sketch plus the tracked query set.
	sketch  minhash.Sketch
	related map[int]bool
	// Bit method state: one signature per tracked query (no sketch is
	// maintained — all hot-path work is bit operations).
	sigs map[int]*bitsig.Signature
}

// geoKey identifies a (query, candidate start) pair for match dedup across
// the transient cascade evaluations.
type geoKey struct {
	qid   int
	start int
}

// shardGeometric implements Geometric order for one shard's replica. The
// arriving window is tested alone, then cascaded through the stored
// buckets newest→oldest, testing each cumulative suffix; storage is
// updated binary-counter style. Per-query work (signature ors, sketch
// compares, match tests) touches only the shard's queries and therefore
// partitions across shards; the Sketch method's per-bucket sketch combines
// are replicated per shard and accounted by shard 0 alone so the totals
// stay worker-count invariant.
func (e *Engine) shardGeometric(s *engineShard, win *windowResult, view *queryPlane) {
	if s.geoReported == nil {
		s.geoReported = make(map[geoKey]bool)
	}
	nb := e.newGeoBucket(s, win)

	// Test the window alone.
	e.testGeo(s, win, nb, view)

	// Transient cascade: suffix = window ∪ newest ∪ next ∪ ...
	maxW := win.maxW
	acc := nb
	for i := len(s.geo) - 1; i >= 0; i-- {
		if acc.windows+s.geo[i].windows > maxW {
			break
		}
		acc = e.mergeGeo(s, win, s.geo[i], acc, view)
		e.testGeo(s, win, acc, view)
	}

	// Storage update: push the size-1 bucket, merge equal-size neighbours.
	// Merges whose result would exceed the λL bound are pointless (such a
	// candidate can never match any query) and would starve the cascade,
	// so they are suppressed.
	s.geo = append(s.geo, e.cloneGeo(nb))
	if win.tr != nil && s.spine {
		win.tr.Serial().Add(trace.Born, -1, nb.startFrame, nb.endFrame, 1, -1, 0)
	}
	for n := len(s.geo); n >= 2 &&
		s.geo[n-1].windows >= s.geo[n-2].windows &&
		s.geo[n-1].windows+s.geo[n-2].windows <= maxW; n = len(s.geo) {
		merged := e.mergeGeo(s, win, s.geo[n-2], s.geo[n-1], view)
		s.geo = append(s.geo[:n-2], merged)
	}
	// Expire the oldest buckets beyond the λL bound.
	total := 0
	for _, b := range s.geo {
		total += b.windows
	}
	for len(s.geo) > 0 && total > maxW {
		total -= s.geo[0].windows
		if win.tr != nil && s.spine {
			b := s.geo[0]
			win.tr.Serial().Add(trace.Expired, -1, b.startFrame, b.endFrame, b.windows, -1, 0)
		}
		s.geo = s.geo[1:]
	}

	// Accounting: per-query state sums across shards; the candidate count
	// is structural (identical replicas) and counted by shard 0 only.
	var sigCount int64
	for _, b := range s.geo {
		if e.cfg.Method == Bit {
			sigCount += int64(len(b.sigs))
		} else {
			sigCount += int64(len(b.related))
		}
	}
	s.d.signatureSum += sigCount
	if s.spine {
		s.d.candidateSum += int64(len(s.geo))
	}

	// Periodically sweep the dedup map of entries too old to recur.
	if e.stats.Windows%64 == 0 {
		horizon := win.endFrame - (maxW+1)*e.cfg.WindowFrames
		for k := range s.geoReported {
			if k.start < horizon {
				delete(s.geoReported, k)
			}
		}
	}
}

// newGeoBucket wraps the arriving window as a size-1 bucket holding the
// shard's slice of the probe results.
func (e *Engine) newGeoBucket(s *engineShard, win *windowResult) *geoBucket {
	b := &geoBucket{
		startFrame: win.startFrame,
		endFrame:   win.endFrame,
		windows:    1,
	}
	if e.cfg.Method == Bit {
		rel := win.relatedSh[s.id]
		b.sigs = make(map[int]*bitsig.Signature, len(rel))
		for qid, sig := range rel {
			b.sigs[qid] = sig
		}
	} else {
		b.sketch = win.sketch
		qids := win.qidsSh[s.id]
		b.related = make(map[int]bool, len(qids))
		for _, qid := range qids {
			b.related[qid] = true
		}
	}
	return b
}

// cloneGeo deep-copies a bucket so stored state never aliases transient
// cascade state.
func (e *Engine) cloneGeo(b *geoBucket) *geoBucket {
	c := &geoBucket{
		startFrame: b.startFrame,
		endFrame:   b.endFrame,
		windows:    b.windows,
		sketch:     b.sketch.Clone(),
	}
	if b.sigs != nil {
		c.sigs = make(map[int]*bitsig.Signature, len(b.sigs))
		for qid, s := range b.sigs {
			c.sigs[qid] = s.Clone()
		}
	}
	if b.related != nil {
		c.related = make(map[int]bool, len(b.related))
		for qid := range b.related {
			c.related[qid] = true
		}
	}
	return c
}

// mergeGeo combines an older bucket with a newer one into a fresh bucket.
// Under the Bit method a query survives the merge only when both sides
// track it (the paper's candidates keep signatures of queries related to
// their consecutive candidate sequences; true-copy windows always stay
// related, so this costs no detectable copies), and no sketch operations
// are performed at all — the asymmetry behind the Fig. 6 CPU split.
func (e *Engine) mergeGeo(s *engineShard, win *windowResult, old, new_ *geoBucket, view *queryPlane) *geoBucket {
	out := &geoBucket{
		startFrame: old.startFrame,
		endFrame:   new_.endFrame,
		windows:    old.windows + new_.windows,
	}
	if e.cfg.Method == Bit {
		out.sigs = make(map[int]*bitsig.Signature)
		for qid, a := range old.sigs {
			b := new_.sigs[qid]
			if b == nil {
				continue
			}
			q := view.lookup(qid)
			if q == nil || out.windows > e.maxWindowsOf(q) {
				if win.tr != nil {
					win.tr.Shard(s.id).Add(trace.Expired, qid, out.startFrame, out.endFrame, out.windows, -1, 0)
				}
				continue
			}
			sig := a.Clone()
			sig.Or(b)
			s.d.sigOrs++
			if !e.cfg.DisablePrune && sig.Prunable(e.cfg.Delta) {
				if win.tr != nil {
					margin := (float64(sig.LessCount()) - float64(e.cfg.K)*(1-e.cfg.Delta)) / float64(e.cfg.K)
					win.tr.Shard(s.id).Add(trace.Pruned, qid, out.startFrame, out.endFrame, out.windows, sig.Similarity(), margin)
				}
				s.d.pruned++
				continue
			}
			out.sigs[qid] = sig
		}
		return out
	}
	// Every replica combines its own copy of the sketch (duplicated CPU,
	// but off the per-query critical path); only the spine shard counts it.
	out.sketch = minhash.Combined(old.sketch, new_.sketch)
	if s.spine {
		s.d.sketchCombines++
	}
	out.related = make(map[int]bool)
	for qid := range old.related {
		out.related[qid] = true
	}
	for qid := range new_.related {
		out.related[qid] = true
	}
	for qid := range out.related {
		q := view.lookup(qid)
		if q == nil || out.windows > e.maxWindowsOf(q) {
			if win.tr != nil {
				win.tr.Shard(s.id).Add(trace.Expired, qid, out.startFrame, out.endFrame, out.windows, -1, 0)
			}
			delete(out.related, qid)
		}
	}
	return out
}

// testGeo evaluates one (possibly transient) candidate against the shard's
// tracked queries, buffering threshold crossings once per (query, start).
func (e *Engine) testGeo(s *engineShard, win *windowResult, b *geoBucket, view *queryPlane) {
	if e.cfg.Method == Bit {
		for _, qid := range sortedSigKeys(b.sigs) {
			sig := b.sigs[qid]
			q := view.lookup(qid)
			if q == nil || b.windows > e.maxWindowsOf(q) {
				continue
			}
			s.d.sigTests++
			sim := sig.Similarity()
			e.traceGeoTest(s, win, b, qid, sim)
			if sim < e.cfg.Delta {
				continue
			}
			k := geoKey{qid: qid, start: b.startFrame}
			if !s.geoReported[k] {
				s.geoReported[k] = true
				s.push(0, b.startFrame, qid, newMatch(qid, b.startFrame, b.endFrame, b.windows, sim))
			}
		}
		return
	}
	for _, qid := range sortedSetKeys(b.related) {
		q := view.lookup(qid)
		if q == nil || b.windows > e.maxWindowsOf(q) {
			continue
		}
		eq, _ := minhash.CompareCounts(b.sketch, q.sketch)
		s.d.sketchCompares++
		sim := float64(eq) / float64(e.cfg.K)
		e.traceGeoTest(s, win, b, qid, sim)
		if sim < e.cfg.Delta {
			continue
		}
		k := geoKey{qid: qid, start: b.startFrame}
		if !s.geoReported[k] {
			s.geoReported[k] = true
			s.push(0, b.startFrame, qid, newMatch(qid, b.startFrame, b.endFrame, b.windows, sim))
		}
	}
}

// traceGeoTest records the lifecycle events of one geometric candidate
// test: the Extended estimate point, plus the Reported / NearMiss decision
// with the same once-per-(query, start) dedup the match buffer applies.
func (e *Engine) traceGeoTest(s *engineShard, win *windowResult, b *geoBucket, qid int, sim float64) {
	if win.tr == nil {
		return
	}
	l := win.tr.Shard(s.id)
	l.Add(trace.Extended, qid, b.startFrame, b.endFrame, b.windows, sim, 0)
	if s.geoReported[geoKey{qid: qid, start: b.startFrame}] {
		return
	}
	if sim >= e.cfg.Delta {
		l.Add(trace.Reported, qid, b.startFrame, b.endFrame, b.windows, sim, 0)
	} else if sim >= e.cfg.Delta-win.nearEps {
		l.Add(trace.NearMiss, qid, b.startFrame, b.endFrame, b.windows, sim, e.cfg.Delta-sim)
	}
}

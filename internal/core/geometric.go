package core

import (
	"vdsms/internal/bitsig"
	"vdsms/internal/minhash"
)

// geoBucket is one stored candidate of the Geometric order: a contiguous
// chunk of basic windows whose sketch (and, for the Bit method, per-query
// signatures) have been pre-combined. The stored buckets form a binary
// counter — sizes grow geometrically from newest to oldest — so an arriving
// window only touches ⌈log i⌉ of them (paper Figures 2 and 3).
type geoBucket struct {
	startFrame, endFrame int
	windows              int
	// Sketch method state: combined sketch plus the tracked query set.
	sketch  minhash.Sketch
	related map[int]bool
	// Bit method state: one signature per tracked query (no sketch is
	// maintained — all hot-path work is bit operations).
	sigs map[int]*bitsig.Signature
}

// geoKey identifies a (query, candidate start) pair for match dedup across
// the transient cascade evaluations.
type geoKey struct {
	qid   int
	start int
}

// processGeometric implements Geometric order. The arriving window is
// tested alone, then cascaded through the stored buckets newest→oldest,
// testing each cumulative suffix; storage is updated binary-counter style.
func (e *Engine) processGeometric(win *windowResult) {
	if e.geoReported == nil {
		e.geoReported = make(map[geoKey]bool)
	}
	nb := e.newGeoBucket(win)

	// Test the window alone.
	e.testGeo(nb)

	// Transient cascade: suffix = window ∪ newest ∪ next ∪ ...
	maxW := e.globalMaxWindows()
	acc := nb
	for i := len(e.geo) - 1; i >= 0; i-- {
		if acc.windows+e.geo[i].windows > maxW {
			break
		}
		acc = e.mergeGeo(e.geo[i], acc)
		e.testGeo(acc)
	}

	// Storage update: push the size-1 bucket, merge equal-size neighbours.
	// Merges whose result would exceed the λL bound are pointless (such a
	// candidate can never match any query) and would starve the cascade,
	// so they are suppressed.
	e.geo = append(e.geo, e.cloneGeo(nb))
	for n := len(e.geo); n >= 2 &&
		e.geo[n-1].windows >= e.geo[n-2].windows &&
		e.geo[n-1].windows+e.geo[n-2].windows <= maxW; n = len(e.geo) {
		merged := e.mergeGeo(e.geo[n-2], e.geo[n-1])
		e.geo = append(e.geo[:n-2], merged)
	}
	// Expire the oldest buckets beyond the λL bound.
	total := 0
	for _, b := range e.geo {
		total += b.windows
	}
	for len(e.geo) > 0 && total > maxW {
		total -= e.geo[0].windows
		e.geo = e.geo[1:]
	}

	// Accounting.
	var sigCount int64
	for _, b := range e.geo {
		if e.cfg.Method == Bit {
			sigCount += int64(len(b.sigs))
		} else {
			sigCount += int64(len(b.related))
		}
	}
	e.stats.SignatureSum += sigCount
	e.stats.CandidateSum += int64(len(e.geo))

	// Periodically sweep the dedup map of entries too old to recur.
	if e.stats.Windows%64 == 0 {
		horizon := win.endFrame - (maxW+1)*e.cfg.WindowFrames
		for k := range e.geoReported {
			if k.start < horizon {
				delete(e.geoReported, k)
			}
		}
	}
}

// newGeoBucket wraps the arriving window as a size-1 bucket.
func (e *Engine) newGeoBucket(win *windowResult) *geoBucket {
	b := &geoBucket{
		startFrame: win.startFrame,
		endFrame:   win.endFrame,
		windows:    1,
	}
	if e.cfg.Method == Bit {
		b.sigs = make(map[int]*bitsig.Signature, len(win.related))
		for qid, sig := range win.related {
			b.sigs[qid] = sig
		}
	} else {
		b.sketch = win.sketch
		b.related = make(map[int]bool, len(win.qids))
		for _, qid := range win.qids {
			b.related[qid] = true
		}
	}
	return b
}

// cloneGeo deep-copies a bucket so stored state never aliases transient
// cascade state.
func (e *Engine) cloneGeo(b *geoBucket) *geoBucket {
	c := &geoBucket{
		startFrame: b.startFrame,
		endFrame:   b.endFrame,
		windows:    b.windows,
		sketch:     b.sketch.Clone(),
	}
	if b.sigs != nil {
		c.sigs = make(map[int]*bitsig.Signature, len(b.sigs))
		for qid, s := range b.sigs {
			c.sigs[qid] = s.Clone()
		}
	}
	if b.related != nil {
		c.related = make(map[int]bool, len(b.related))
		for qid := range b.related {
			c.related[qid] = true
		}
	}
	return c
}

// mergeGeo combines an older bucket with a newer one into a fresh bucket.
// Under the Bit method a query survives the merge only when both sides
// track it (the paper's candidates keep signatures of queries related to
// their consecutive candidate sequences; true-copy windows always stay
// related, so this costs no detectable copies), and no sketch operations
// are performed at all — the asymmetry behind the Fig. 6 CPU split.
func (e *Engine) mergeGeo(old, new_ *geoBucket) *geoBucket {
	out := &geoBucket{
		startFrame: old.startFrame,
		endFrame:   new_.endFrame,
		windows:    old.windows + new_.windows,
	}
	if e.cfg.Method == Bit {
		out.sigs = make(map[int]*bitsig.Signature)
		for qid, a := range old.sigs {
			b := new_.sigs[qid]
			if b == nil {
				continue
			}
			q := e.qs.lookup(qid)
			if q == nil || out.windows > e.maxWindowsOf(q) {
				continue
			}
			s := a.Clone()
			s.Or(b)
			e.stats.SigOrs++
			if !e.cfg.DisablePrune && s.Prunable(e.cfg.Delta) {
				continue
			}
			out.sigs[qid] = s
		}
		return out
	}
	out.sketch = minhash.Combined(old.sketch, new_.sketch)
	e.stats.SketchCombines++
	out.related = make(map[int]bool)
	for qid := range old.related {
		out.related[qid] = true
	}
	for qid := range new_.related {
		out.related[qid] = true
	}
	for qid := range out.related {
		q := e.qs.lookup(qid)
		if q == nil || out.windows > e.maxWindowsOf(q) {
			delete(out.related, qid)
		}
	}
	return out
}

// testGeo evaluates one (possibly transient) candidate against its related
// queries, reporting threshold crossings once per (query, start).
func (e *Engine) testGeo(b *geoBucket) {
	if e.cfg.Method == Bit {
		for _, qid := range sortedSigKeys(b.sigs) {
			sig := b.sigs[qid]
			q := e.qs.lookup(qid)
			if q == nil || b.windows > e.maxWindowsOf(q) {
				continue
			}
			e.stats.SigTests++
			sim := sig.Similarity()
			if sim < e.cfg.Delta {
				continue
			}
			k := geoKey{qid: qid, start: b.startFrame}
			if !e.geoReported[k] {
				e.geoReported[k] = true
				e.report(qid, b.startFrame, b.endFrame, b.windows, sim)
			}
		}
		return
	}
	for _, qid := range sortedSetKeys(b.related) {
		q := e.qs.lookup(qid)
		if q == nil || b.windows > e.maxWindowsOf(q) {
			continue
		}
		eq, _ := minhash.CompareCounts(b.sketch, q.sketch)
		e.stats.SketchCompares++
		sim := float64(eq) / float64(e.cfg.K)
		if sim < e.cfg.Delta {
			continue
		}
		k := geoKey{qid: qid, start: b.startFrame}
		if !e.geoReported[k] {
			e.geoReported[k] = true
			e.report(qid, b.startFrame, b.endFrame, b.windows, sim)
		}
	}
}

// globalMaxWindows returns the largest ⌈λL/w⌉ over live queries (1 when no
// queries are subscribed, so the structures stay bounded).
func (e *Engine) globalMaxWindows() int {
	frames := e.qs.maxFrames()
	if frames == 0 {
		return 1
	}
	return e.cfg.maxWindows(frames)
}

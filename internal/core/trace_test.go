package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"vdsms/internal/trace"
)

// traceRun pushes determinism_test.go's workload through an engine with
// tracing (and optionally auditing) armed, returning the match stream, the
// journaled events and the provenance records.
func traceRun(t *testing.T, v variant, workers, k int, auditEvery int) ([]Match, []trace.Event, []trace.MatchRecord) {
	t.Helper()
	cfg := Config{
		K: k, Seed: 5, Delta: 0.5, Lambda: 2, WindowFrames: 10,
		Order: v.order, Method: v.method, UseIndex: v.useIndex,
		Workers: workers,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := trace.NewJournal(1<<17, 512)
	e.Trace(j, "t")
	if auditEvery > 0 {
		e.SetAudit(auditEvery)
	}
	rng := rand.New(rand.NewSource(42))
	queries := make([][]uint64, 7)
	for i := range queries {
		queries[i] = idStream(rng, i+1, 40+10*i)
		if err := e.AddQuery(i+1, queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	var stream []uint64
	stream = append(stream, idStream(rng, 50, 95)...)
	for _, qi := range []int{2, 0, 5, 3} {
		stream = append(stream, queries[qi]...)
		stream = append(stream, idStream(rng, 60+qi, 57)...)
	}
	e.PushFrames(stream)
	e.Flush()
	return e.Matches, j.Events(trace.Filter{Kind: trace.KindAny}), j.Matches(0)
}

// TestTracingDoesNotPerturbMatches: arming tracing plus the exact-audit
// sampler must leave the match stream byte-identical to an untraced run,
// for every variant, serial and parallel.
func TestTracingDoesNotPerturbMatches(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			for _, workers := range []int{0, 4} {
				wantM, _ := detRun(t, v, workers, true)
				gotM, _, _ := traceRun(t, v, workers, 192, 3)
				if !reflect.DeepEqual(gotM, wantM) {
					t.Errorf("Workers=%d: tracing perturbed matches\nuntraced: %+v\ntraced:   %+v",
						workers, wantM, gotM)
				}
			}
		})
	}
}

// TestTraceWorkerInvariance: the folded event stream and the provenance
// records must be identical for every worker count — the contract that
// makes /debug/events reproducible regardless of deployment parallelism.
func TestTraceWorkerInvariance(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			_, wantE, wantR := traceRun(t, v, 0, 192, 0)
			if len(wantE) == 0 {
				t.Fatal("serial run journaled no events")
			}
			for _, workers := range []int{1, 4, 8} {
				_, gotE, gotR := traceRun(t, v, workers, 192, 0)
				if !reflect.DeepEqual(gotE, wantE) {
					i := 0
					for i < len(gotE) && i < len(wantE) && gotE[i] == wantE[i] {
						i++
					}
					t.Fatalf("Workers=%d: event stream diverges from serial at index %d (serial %d events, parallel %d)",
						workers, i, len(wantE), len(gotE))
				}
				if !reflect.DeepEqual(gotR, wantR) {
					t.Errorf("Workers=%d: provenance records diverge\nserial:   %+v\nparallel: %+v",
						workers, wantR, gotR)
				}
			}
		})
	}
}

// TestTraceLifecycleCoverage: the workload's copies must produce the full
// lifecycle vocabulary, and reported events must align with the match
// stream.
func TestTraceLifecycleCoverage(t *testing.T) {
	matches, events, records := traceRun(t, variants[0], 0, 192, 0)
	byKind := map[trace.Kind]int{}
	for _, ev := range events {
		byKind[ev.Kind]++
	}
	for _, k := range []trace.Kind{trace.Born, trace.Extended, trace.Expired, trace.Reported} {
		if byKind[k] == 0 {
			t.Errorf("no %s events journaled", k)
		}
	}
	if len(records) != len(matches) {
		t.Fatalf("%d provenance records for %d matches", len(records), len(matches))
	}
	for i, rec := range records {
		m := matches[i]
		if rec.ID != uint64(i+1) || rec.QueryID != m.QueryID || rec.StartFrame != m.StartFrame ||
			rec.EndFrame != m.EndFrame || rec.Similarity != m.Similarity {
			t.Errorf("record %d does not describe match %d:\nrecord: %+v\nmatch:  %+v", rec.ID, i, rec, m)
		}
		if rec.Order != "sequential" || rec.Method != "bit" {
			t.Errorf("record %d labelled %s/%s", rec.ID, rec.Order, rec.Method)
		}
		if len(rec.Trajectory) == 0 {
			t.Errorf("record %d has no estimate trajectory", rec.ID)
		}
	}
}

// TestAuditReportsWithinBound: with the paper's K=800 and every report
// audited, the estimator error of every emitted match must stay inside
// Theorem 1's deviation bound — the live sketch-accuracy contract.
func TestAuditReportsWithinBound(t *testing.T) {
	for _, v := range []variant{variants[0], variants[6]} { // bit-seq-index, sketch-geo-index
		t.Run(v.name, func(t *testing.T) {
			for _, workers := range []int{0, 4} {
				_, _, records := traceRun(t, v, workers, 800, 1)
				if len(records) == 0 {
					t.Fatal("no matches to audit")
				}
				for _, rec := range records {
					if rec.Audit == nil {
						t.Errorf("match %d not audited despite every=1", rec.ID)
						continue
					}
					a := rec.Audit
					if a.Bound <= 0 || a.Bound > 0.1 {
						t.Errorf("match %d bound %v, want Theorem 1's ~0.095 for K=800", rec.ID, a.Bound)
					}
					if a.AbsError > a.Bound || a.Violated {
						t.Errorf("match %d estimator error %v exceeds bound %v (exact=%v estimate=%v)",
							rec.ID, a.AbsError, a.Bound, a.Exact, a.Estimate)
					}
				}
			}
		})
	}
}

// TestTraceDisabledAddsNoAllocations: a recorder armed but switched off
// must leave the steady-state window path with exactly the allocation
// profile of an engine that never heard of tracing.
func TestTraceDisabledAddsNoAllocations(t *testing.T) {
	build := func(armDisabled bool) (*Engine, [][]uint64) {
		cfg := Config{
			K: 128, Seed: 9, Delta: 0.7, Lambda: 2, WindowFrames: 10,
			Method: Bit, Order: Sequential, UseIndex: true,
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for id := 1; id <= 20; id++ {
			if err := e.AddQuery(id, idStream(rng, id, 40)); err != nil {
				t.Fatal(err)
			}
		}
		wins := make([][]uint64, 8)
		for w := range wins {
			wins[w] = idStream(rng, 50+w, cfg.WindowFrames)
		}
		for i := 0; i < 32; i++ {
			e.PushFrames(wins[i%len(wins)])
		}
		if armDisabled {
			r := e.Trace(trace.NewJournal(64, 8), "alloc")
			r.SetEnabled(false)
		}
		return e, wins
	}
	measure := func(e *Engine, wins [][]uint64) float64 {
		i := 0
		return testing.AllocsPerRun(200, func() {
			e.PushFrames(wins[i%len(wins)])
			i++
		})
	}
	eOff, wOff := build(false)
	eDis, wDis := build(true)
	base := measure(eOff, wOff)
	disabled := measure(eDis, wDis)
	if disabled > base {
		t.Errorf("disabled tracer allocates: %.2f allocs/window vs %.2f without a tracer", disabled, base)
	}
}

func TestSlowBudgetRuntimeAdjust(t *testing.T) {
	cfg := Config{K: 64, Seed: 1, Delta: 0.7, Lambda: 2, WindowFrames: 10}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SlowWindow = 5 * time.Millisecond
	if got := e.slowBudget(); got != 5*time.Millisecond {
		t.Errorf("static budget = %v", got)
	}
	b := NewSlowBudget(250 * time.Millisecond)
	e.SlowVar = b
	if got := e.slowBudget(); got != 250*time.Millisecond {
		t.Errorf("shared budget = %v, want 250ms", got)
	}
	b.Set(0)
	if got := e.slowBudget(); got != 0 {
		t.Errorf("budget after Set(0) = %v", got)
	}
	b.Set(time.Second)
	if got := b.Get(); got != time.Second {
		t.Errorf("Get = %v", got)
	}
}

package core

import (
	"sort"

	"vdsms/internal/bitsig"
)

// Candidate maps are iterated in sorted query-id order wherever iteration
// can emit matches, so identical inputs always produce identical match
// sequences — a requirement for reproducible experiments.

// sortedSigKeys returns the keys of a signature map in ascending order.
func sortedSigKeys(m map[int]*bitsig.Signature) []int {
	keys := make([]int, 0, len(m))
	for qid := range m {
		keys = append(keys, qid)
	}
	sort.Ints(keys)
	return keys
}

// sortedSetKeys returns the keys of a query-id set in ascending order.
func sortedSetKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for qid := range m {
		keys = append(keys, qid)
	}
	sort.Ints(keys)
	return keys
}

package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentChurnUnderParallelEngines stresses the shared-QuerySet
// deployment the paper targets: several engines monitor streams in
// parallel goroutines — each with its own intra-stream worker pool — while
// another goroutine subscribes and unsubscribes queries the whole time.
// The assertions are deliberately weak (no panics, bounded candidate
// state, every engine sees every frame); the value of the test is the
// interleaving itself under -race.
func TestConcurrentChurnUnderParallelEngines(t *testing.T) {
	const engines = 3
	frames := 4000
	churns := 300
	if testing.Short() {
		frames = 600
		churns = 40
	}

	qs, err := NewQuerySet(96, 21, true)
	if err != nil {
		t.Fatal(err)
	}
	qrng := rand.New(rand.NewSource(77))
	queryIDs := func(id int) []uint64 { return idStream(rand.New(rand.NewSource(int64(id))), id%6+1, 30+id%5*10) }
	for id := 1; id <= 8; id++ {
		if err := qs.Add(id, queryIDs(id)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for n := 0; n < engines; n++ {
		cfg := Config{
			K: 96, Seed: 21, Delta: 0.5, Lambda: 2, WindowFrames: 10,
			Order: Order(n % 2), Method: Method(n % 2), UseIndex: true,
			Workers: 1 + n,
		}
		e, err := NewEngineWith(cfg, qs)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(n int, e *Engine) {
			defer wg.Done()
			srng := rand.New(rand.NewSource(int64(100 + n)))
			pushed := 0
			for pushed < frames {
				chunk := idStream(srng, n%6+1, 25)
				e.PushFrames(chunk)
				pushed += len(chunk)
			}
			e.Flush()
			if got := e.Stats().Frames; got < frames {
				t.Errorf("engine %d consumed %d frames, want >= %d", n, got, frames)
			}
		}(n, e)
	}

	// Churn goroutine: remove and re-add queries with fresh ids while the
	// engines run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := 9
		live := []int{1, 2, 3, 4, 5, 6, 7, 8}
		for i := 0; i < churns; i++ {
			j := qrng.Intn(len(live))
			if err := qs.Remove(live[j]); err != nil {
				t.Errorf("remove %d: %v", live[j], err)
			}
			id := next
			next++
			if err := qs.Add(id, queryIDs(id)); err != nil {
				t.Errorf("add %d: %v", id, err)
			}
			live[j] = id
		}
	}()
	wg.Wait()

	if n := qs.Len(); n != 8 {
		t.Errorf("query set ends with %d queries, want 8", n)
	}
}

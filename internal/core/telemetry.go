// Telemetry instrumentation of the matching kernel: per-stage latency
// histograms, throughput counters, per-shard comparison counters and the
// slow-window tracer.
//
// Metric handles are package-level (resolved once against
// telemetry.Default); every engine in the process folds into the same
// series, which is the deployment reality — a server runs one engine per
// concurrent stream and the operator wants the aggregate. Stage timing is
// gated on telemetry.Enabled() (or an armed slow-window tracer) so the
// kernel can be benchmarked with instrumentation cold; the counters are
// single atomic adds and stay on unconditionally.
package core

import (
	"strconv"
	"time"

	"vdsms/internal/perfobs"
	"vdsms/internal/telemetry"
)

var (
	telWindows = telemetry.Default.Counter("vcd_windows_processed_total",
		"Basic windows processed by the matching kernel, across all engines.")
	telFrames = telemetry.Default.Counter("vcd_frames_total",
		"Key frames consumed by the matching kernel, across all engines.")
	telMatches = telemetry.Default.Counter("vcd_matches_total",
		"Matches reported, across all engines (WAL replay included).")
	telProbeRelated = telemetry.Default.Counter("vcd_probe_related_total",
		"Related queries surfaced by window probes.")
	telProbePruned = telemetry.Default.Counter("vcd_probe_pruned_total",
		"Lemma 2 prunes, during probing and candidate extension.")

	telPrefilterProbes = telemetry.Default.Counter("vcd_prefilter_row_probes_total",
		"Per-row pre-filter membership tests (K per window when the tier is on).")
	telPrefilterRejects = telemetry.Default.Counter("vcd_prefilter_row_rejects_total",
		"Row probes the pre-filter rejected before any Hash-Query index work.")
	telPrefilterFP = telemetry.Default.Counter("vcd_prefilter_false_positives_total",
		"Rows the pre-filter admitted whose index search found nothing (wasted binary searches).")
	telPrefilterBytes = telemetry.Default.Gauge("vcd_prefilter_bytes",
		"Memory footprint of the pre-filter bit array, in bytes.")
	telPrefilterBytesPerQuery = telemetry.Default.Gauge("vcd_prefilter_bytes_per_query",
		"Pre-filter bytes divided by registered queries — the tier's marginal memory cost.")
	telPrefilterRebuilds = telemetry.Default.Counter("vcd_prefilter_rebuilds_total",
		"Pre-filter rebuilds triggered by churn staleness or saturation.")

	telStageSketch  = stageHistogram("sketch")
	telStageProbe   = stageHistogram("probe")
	telStageCombine = stageHistogram("combine")
	telStageMerge   = stageHistogram("merge")
	telStageWindow  = stageHistogram("window_total")
)

// stageHistogram registers one series of the per-stage latency histogram.
// probe and combine observe the slowest shard of the window (the critical
// path); sketch, merge and window_total are serial spans.
func stageHistogram(stage string) *telemetry.Histogram {
	return telemetry.Default.Histogram("vcd_stage_duration_seconds",
		"Wall-clock duration of pipeline stages, one observation per basic window (slowest shard for fanned-out stages).",
		telemetry.DurationBuckets, telemetry.L("stage", stage))
}

// shardComparedCounter registers the per-shard comparison counter for one
// query shard id. Engines with equal worker counts share series — the
// service-level aggregate across streams.
func shardComparedCounter(shard int) *telemetry.Counter {
	return telemetry.Default.Counter("vcd_shard_compared_total",
		"Similarity evaluations (signature tests plus sketch comparisons) per query shard, across all engines.",
		telemetry.L("shard", strconv.Itoa(shard)))
}

// SlowWindowTrace is the per-stage breakdown handed to OnSlowWindow when a
// basic window exceeds the engine's SlowWindow budget. probe and combine
// are the slowest shard's spans; merge covers the serial spine work around
// the shard fork (pre-pass, post-pass, deterministic match merge, stats
// fold).
type SlowWindowTrace struct {
	// StartFrame and EndFrame delimit the offending window in key frames.
	StartFrame, EndFrame int
	// Related is the number of related queries the probe surfaced.
	Related int
	// Budget is the threshold that was exceeded.
	Budget time.Duration
	// Total is the window's full processing time; the stage fields below
	// decompose it (up to scheduler noise between clock reads).
	Total, Sketch, Probe, Combine, Merge time.Duration
}

// observeWindow publishes one processed window's stage spans into the
// histograms, finishes the window's perf span (when sampled), and, when
// the window blew its budget, hands the breakdown to the tracer. Called
// once per window from processWindow, only when timing was armed. budget
// is the slow-window threshold resolved for this window (the
// runtime-adjustable SlowVar when wired, else SlowWindow).
func (e *Engine) observeWindow(win *windowResult, budget time.Duration, sketch, merge, total time.Duration, sp *perfobs.Span) {
	var probeNS, combineNS int64
	for _, s := range e.shards {
		if s.d.probeNS > probeNS {
			probeNS = s.d.probeNS
		}
		if s.d.combineNS > combineNS {
			combineNS = s.d.combineNS
		}
	}
	probe := time.Duration(probeNS)
	combine := time.Duration(combineNS)
	if telemetry.Enabled() {
		telStageSketch.ObserveDuration(sketch)
		telStageProbe.ObserveDuration(probe)
		telStageCombine.ObserveDuration(combine)
		telStageMerge.ObserveDuration(merge)
		telStageWindow.ObserveDuration(total)
	}
	if sp != nil {
		sp.Window = int64(e.stats.Windows)
		sp.StartFrame = win.startFrame
		sp.EndFrame = win.endFrame
		sp.Related = win.relatedLen()
		sp.Workers = e.nshards
		sp.Plane = e.planeVersion
		sp.Set(perfobs.StageSketch, sketch)
		sp.SetNS(perfobs.StageProbe, probeNS)
		sp.SetNS(perfobs.StageCombine, combineNS)
		sp.Set(perfobs.StageMerge, merge)
		sp.Set(perfobs.StageWindowTotal, total)
		e.perf.End(sp)
	}
	if budget > 0 && total > budget && e.OnSlowWindow != nil {
		e.OnSlowWindow(SlowWindowTrace{
			StartFrame: win.startFrame,
			EndFrame:   win.endFrame,
			Related:    win.relatedLen(),
			Budget:     budget,
			Total:      total,
			Sketch:     sketch,
			Probe:      probe,
			Combine:    combine,
			Merge:      merge,
		})
	}
}

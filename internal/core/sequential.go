package core

import (
	"vdsms/internal/bitsig"
	"vdsms/internal/minhash"
	"vdsms/internal/trace"
)

// seqCandidate is one entry of the Sequential-order candidate list: the
// suffix of the stream starting at startFrame. The scalar spine fields
// (interval, size, combined sketch) are advanced serially once per window;
// the per-query state is split into per-shard slots — slot s holds only
// queries with ShardOf(qid) == s and is mutated exclusively by shard s
// during the parallel phase.
type seqCandidate struct {
	startFrame int
	windows    int
	// Sketch method spine state: the combined candidate sketch.
	sketch minhash.Sketch
	// Bit method per-shard state: one signature per tracked query.
	sigs []map[int]*bitsig.Signature
	// Sketch method per-shard state: the tracked query sets.
	related []map[int]bool
	// reported dedups match reports per query for this candidate.
	reported []map[int]bool
}

// tracked returns the number of queries the candidate tracks across all
// shard slots (signatures for Bit, related entries for Sketch).
func (c *seqCandidate) tracked(method Method) int {
	n := 0
	if method == Bit {
		for _, m := range c.sigs {
			n += len(m)
		}
		return n
	}
	for _, m := range c.related {
		n += len(m)
	}
	return n
}

// seqPrePass advances the candidate spine serially before the shard fork:
// sizes grow by one window, and under the Sketch method the window sketch
// is folded into each candidate's combined sketch exactly once (the spine
// operation the shards then compare against read-only).
func (e *Engine) seqPrePass(win *windowResult) {
	for _, c := range e.seq {
		c.windows++
		if e.cfg.Method == Sketch {
			minhash.Combine(c.sketch, win.sketch)
			e.stats.SketchCombines++
		}
	}
}

// shardSequential runs one shard's slice of the Sequential kernel: the
// window-alone test for the shard's related queries, then the extension of
// the shard's slot in every candidate.
func (e *Engine) shardSequential(s *engineShard, win *windowResult, view *queryPlane) {
	s.newReported = make(map[int]bool)
	if e.cfg.Method == Bit {
		e.seqShardBit(s, win, view)
	} else {
		e.seqShardSketch(s, win, view)
	}
}

// seqShardBit is the Bit-method shard phase.
func (e *Engine) seqShardBit(s *engineShard, win *windowResult, view *queryPlane) {
	rel := win.relatedSh[s.id]

	// (1) Test the basic window itself against the shard's related queries.
	for _, qid := range sortedSigKeys(rel) {
		sig := rel[qid]
		s.d.sigTests++
		sim := sig.Similarity()
		if win.tr != nil {
			l := win.tr.Shard(s.id)
			l.Add(trace.Extended, qid, win.startFrame, win.endFrame, 1, sim, 0)
			if sim >= e.cfg.Delta {
				l.Add(trace.Reported, qid, win.startFrame, win.endFrame, 1, sim, 0)
			} else if sim >= e.cfg.Delta-win.nearEps {
				l.Add(trace.NearMiss, qid, win.startFrame, win.endFrame, 1, sim, e.cfg.Delta-sim)
			}
		}
		if sim >= e.cfg.Delta {
			s.push(0, win.startFrame, qid, newMatch(qid, win.startFrame, win.endFrame, 1, sim))
			s.newReported[qid] = true
		}
	}

	// (2) Extend the shard's slot of every candidate. A query stays tracked
	// only while consecutive windows keep it related (Section V.B); a window
	// with no equal min-hash against q — or where q was Lemma 2-pruned —
	// drops q from the candidate. Windows inside a true copy of q always
	// share min-hashes with q, so this never loses a detectable copy.
	for _, c := range e.seq {
		sigs := c.sigs[s.id]
		for _, qid := range sortedSigKeys(sigs) {
			sig := sigs[qid]
			q := view.lookup(qid)
			if q == nil || c.windows > e.maxWindowsOf(q) {
				if win.tr != nil {
					win.tr.Shard(s.id).Add(trace.Expired, qid, c.startFrame, win.endFrame, c.windows, -1, 0)
				}
				delete(sigs, qid)
				continue
			}
			wsig := rel[qid]
			if wsig == nil { // unrelated or pruned: cascade the drop
				if win.tr != nil {
					win.tr.Shard(s.id).Add(trace.Dropped, qid, c.startFrame, win.endFrame, c.windows, -1, 0)
				}
				delete(sigs, qid)
				continue
			}
			sig.Or(wsig)
			s.d.sigOrs++
			if !e.cfg.DisablePrune && sig.Prunable(e.cfg.Delta) {
				if win.tr != nil {
					margin := (float64(sig.LessCount()) - float64(e.cfg.K)*(1-e.cfg.Delta)) / float64(e.cfg.K)
					win.tr.Shard(s.id).Add(trace.Pruned, qid, c.startFrame, win.endFrame, c.windows, sig.Similarity(), margin)
				}
				delete(sigs, qid)
				s.d.pruned++
				continue
			}
			s.d.sigTests++
			sim := sig.Similarity()
			if win.tr != nil {
				l := win.tr.Shard(s.id)
				l.Add(trace.Extended, qid, c.startFrame, win.endFrame, c.windows, sim, 0)
				if !c.reported[s.id][qid] {
					if sim >= e.cfg.Delta {
						l.Add(trace.Reported, qid, c.startFrame, win.endFrame, c.windows, sim, 0)
					} else if sim >= e.cfg.Delta-win.nearEps {
						l.Add(trace.NearMiss, qid, c.startFrame, win.endFrame, c.windows, sim, e.cfg.Delta-sim)
					}
				}
			}
			if sim >= e.cfg.Delta && !c.reported[s.id][qid] {
				s.push(1, c.startFrame, qid, newMatch(qid, c.startFrame, win.endFrame, c.windows, sim))
				c.reported[s.id][qid] = true
			}
		}
	}
}

// seqShardSketch is the Sketch-method shard phase. The candidate sketches
// were already combined by the serial pre-pass; shards only compare.
func (e *Engine) seqShardSketch(s *engineShard, win *windowResult, view *queryPlane) {
	// (1) Test the basic window against the shard's related queries.
	for _, qid := range win.qidsSh[s.id] {
		q := view.lookup(qid)
		if q == nil {
			continue
		}
		eq, _ := minhash.CompareCounts(win.sketch, q.sketch)
		s.d.sketchCompares++
		sim := float64(eq) / float64(e.cfg.K)
		if win.tr != nil {
			l := win.tr.Shard(s.id)
			l.Add(trace.Extended, qid, win.startFrame, win.endFrame, 1, sim, 0)
			if sim >= e.cfg.Delta {
				l.Add(trace.Reported, qid, win.startFrame, win.endFrame, 1, sim, 0)
			} else if sim >= e.cfg.Delta-win.nearEps {
				l.Add(trace.NearMiss, qid, win.startFrame, win.endFrame, 1, sim, e.cfg.Delta-sim)
			}
		}
		if sim >= e.cfg.Delta {
			s.push(0, win.startFrame, qid, newMatch(qid, win.startFrame, win.endFrame, 1, sim))
			s.newReported[qid] = true
		}
	}

	// (2) Re-compare each candidate's combined sketch for the shard's
	// tracked queries.
	for _, c := range e.seq {
		relM := c.related[s.id]
		for _, qid := range sortedSetKeys(relM) {
			q := view.lookup(qid)
			if q == nil || c.windows > e.maxWindowsOf(q) {
				if win.tr != nil {
					win.tr.Shard(s.id).Add(trace.Expired, qid, c.startFrame, win.endFrame, c.windows, -1, 0)
				}
				delete(relM, qid)
				continue
			}
			eq, less := minhash.CompareCounts(c.sketch, q.sketch)
			s.d.sketchCompares++
			sim := float64(eq) / float64(e.cfg.K)
			if !e.cfg.DisablePrune && float64(less) > float64(e.cfg.K)*(1-e.cfg.Delta) {
				if win.tr != nil {
					margin := (float64(less) - float64(e.cfg.K)*(1-e.cfg.Delta)) / float64(e.cfg.K)
					win.tr.Shard(s.id).Add(trace.Pruned, qid, c.startFrame, win.endFrame, c.windows, sim, margin)
				}
				delete(relM, qid)
				s.d.pruned++
				continue
			}
			if win.tr != nil {
				l := win.tr.Shard(s.id)
				l.Add(trace.Extended, qid, c.startFrame, win.endFrame, c.windows, sim, 0)
				if !c.reported[s.id][qid] {
					if sim >= e.cfg.Delta {
						l.Add(trace.Reported, qid, c.startFrame, win.endFrame, c.windows, sim, 0)
					} else if sim >= e.cfg.Delta-win.nearEps {
						l.Add(trace.NearMiss, qid, c.startFrame, win.endFrame, c.windows, sim, e.cfg.Delta-sim)
					}
				}
			}
			if sim >= e.cfg.Delta && !c.reported[s.id][qid] {
				s.push(1, c.startFrame, qid, newMatch(qid, c.startFrame, win.endFrame, c.windows, sim))
				c.reported[s.id][qid] = true
			}
		}
	}
}

// seqPostPass runs serially after the join: candidates that no shard still
// tracks are dropped, the fresh size-1 candidate is appended from the
// window's per-shard probe results, and the memory accounting is taken
// over the final list (spine work, counted once).
func (e *Engine) seqPostPass(win *windowResult, view *queryPlane) {
	kept := e.seq[:0]
	for _, c := range e.seq {
		alive := false
		if e.cfg.Method == Bit {
			alive = !allEmptySigs(c.sigs)
		} else {
			alive = !allEmptySets(c.related)
		}
		if alive {
			kept = append(kept, c)
		} else if win.tr != nil {
			win.tr.Serial().Add(trace.Expired, -1, c.startFrame, win.endFrame, c.windows, -1, 0)
		}
	}
	for i := len(kept); i < len(e.seq); i++ {
		e.seq[i] = nil
	}
	e.seq = kept

	// Fresh size-1 candidate tracking the window's related queries; its own
	// window-alone test already ran in the shard phase, so each shard's
	// newReported map seeds the candidate's dedup slot.
	if win.relatedLen() > 0 {
		c := &seqCandidate{
			startFrame: win.startFrame,
			windows:    1,
			reported:   make([]map[int]bool, e.nshards),
		}
		for si := range c.reported {
			c.reported[si] = e.shards[si].newReported
		}
		tracked := 0
		if e.cfg.Method == Bit {
			c.sigs = make([]map[int]*bitsig.Signature, e.nshards)
			for si, rel := range win.relatedSh {
				m := make(map[int]*bitsig.Signature, len(rel))
				for qid, sig := range rel {
					m[qid] = sig.Clone()
				}
				c.sigs[si] = m
				tracked += len(m)
			}
		} else {
			c.sketch = win.sketch.Clone()
			c.related = make([]map[int]bool, e.nshards)
			for si, qids := range win.qidsSh {
				m := make(map[int]bool, len(qids))
				for _, qid := range qids {
					if view.lookup(qid) != nil {
						m[qid] = true
					}
				}
				c.related[si] = m
				tracked += len(m)
			}
		}
		if tracked > 0 {
			e.seq = append(e.seq, c)
			if win.tr != nil {
				win.tr.Serial().Add(trace.Born, -1, c.startFrame, win.endFrame, 1, -1, 0)
			}
		}
	}

	// Memory/candidate accounting after the window is fully folded in.
	var sigCount int64
	for _, c := range e.seq {
		sigCount += int64(c.tracked(e.cfg.Method))
	}
	e.stats.SignatureSum += sigCount
	e.stats.CandidateSum += int64(len(e.seq))
}

package core

import (
	"vdsms/internal/bitsig"
	"vdsms/internal/minhash"
)

// seqCandidate is one entry of the Sequential-order candidate list: the
// suffix of the stream starting at startFrame. Depending on the method it
// carries per-query bit signatures or a combined sketch plus related set.
type seqCandidate struct {
	startFrame int
	windows    int
	// Bit method state.
	sigs map[int]*bitsig.Signature
	// Sketch method state.
	sketch  minhash.Sketch
	related map[int]bool
	// reported dedups match reports per query for this candidate.
	reported map[int]bool
}

// processSequential implements Sequential order: every suffix candidate is
// extended by the new window; a fresh size-1 candidate is appended.
func (e *Engine) processSequential(win *windowResult) {
	if e.cfg.Method == Bit {
		e.seqBit(win)
	} else {
		e.seqSketch(win)
	}
	// Memory/candidate accounting after the window is fully folded in.
	var sigCount int64
	for _, c := range e.seq {
		if e.cfg.Method == Bit {
			sigCount += int64(len(c.sigs))
		} else {
			sigCount += int64(len(c.related))
		}
	}
	e.stats.SignatureSum += sigCount
	e.stats.CandidateSum += int64(len(e.seq))
}

// seqBit handles a window under the Bit method.
func (e *Engine) seqBit(win *windowResult) {
	// (1) Test the basic window itself against its related queries.
	newReported := make(map[int]bool)
	for _, qid := range win.relatedQIDs() {
		sig := win.related[qid]
		e.stats.SigTests++
		if sim := sig.Similarity(); sim >= e.cfg.Delta {
			e.report(qid, win.startFrame, win.endFrame, 1, sim)
			newReported[qid] = true
		}
	}

	// (2) Extend every existing candidate. A query stays tracked only while
	// consecutive windows keep it related (Section V.B: candidates maintain
	// the signatures of queries related to their consecutive candidate
	// sequences); a window with no equal min-hash against q — or where q
	// was Lemma 2-pruned — drops q from the candidate. Windows inside a
	// true copy of q always share min-hashes with q, so this never loses a
	// detectable copy.
	kept := e.seq[:0]
	for _, c := range e.seq {
		c.windows++
		for _, qid := range sortedSigKeys(c.sigs) {
			sig := c.sigs[qid]
			q := e.qs.lookup(qid)
			if q == nil || c.windows > e.maxWindowsOf(q) {
				delete(c.sigs, qid)
				continue
			}
			wsig := win.related[qid]
			if wsig == nil { // unrelated or pruned: cascade the drop
				delete(c.sigs, qid)
				continue
			}
			sig.Or(wsig)
			e.stats.SigOrs++
			if !e.cfg.DisablePrune && sig.Prunable(e.cfg.Delta) {
				delete(c.sigs, qid)
				continue
			}
			e.stats.SigTests++
			if sim := sig.Similarity(); sim >= e.cfg.Delta && !c.reported[qid] {
				e.report(qid, c.startFrame, win.endFrame, c.windows, sim)
				c.reported[qid] = true
			}
		}
		if len(c.sigs) > 0 {
			kept = append(kept, c)
		}
	}
	e.seq = kept

	// (3) Append the fresh size-1 candidate (its own test happened in (1)).
	if len(win.related) > 0 {
		c := &seqCandidate{
			startFrame: win.startFrame,
			windows:    1,
			sigs:       make(map[int]*bitsig.Signature, len(win.related)),
			reported:   newReported,
		}
		for qid, sig := range win.related {
			c.sigs[qid] = sig.Clone()
		}
		e.seq = append(e.seq, c)
	}
}

// seqSketch handles a window under the Sketch method.
func (e *Engine) seqSketch(win *windowResult) {
	// (1) Test the basic window against its related queries.
	newReported := make(map[int]bool)
	for _, qid := range win.qids {
		q := e.qs.lookup(qid)
		if q == nil {
			continue
		}
		eq, _ := minhash.CompareCounts(win.sketch, q.sketch)
		e.stats.SketchCompares++
		if sim := float64(eq) / float64(e.cfg.K); sim >= e.cfg.Delta {
			e.report(qid, win.startFrame, win.endFrame, 1, sim)
			newReported[qid] = true
		}
	}

	// (2) Extend candidates: combine sketches, re-compare related queries.
	kept := e.seq[:0]
	for _, c := range e.seq {
		c.windows++
		minhash.Combine(c.sketch, win.sketch)
		e.stats.SketchCombines++
		for _, qid := range sortedSetKeys(c.related) {
			q := e.qs.lookup(qid)
			if q == nil || c.windows > e.maxWindowsOf(q) {
				delete(c.related, qid)
				continue
			}
			eq, less := minhash.CompareCounts(c.sketch, q.sketch)
			e.stats.SketchCompares++
			if !e.cfg.DisablePrune && float64(less) > float64(e.cfg.K)*(1-e.cfg.Delta) {
				delete(c.related, qid)
				continue
			}
			if sim := float64(eq) / float64(e.cfg.K); sim >= e.cfg.Delta && !c.reported[qid] {
				e.report(qid, c.startFrame, win.endFrame, c.windows, sim)
				c.reported[qid] = true
			}
		}
		if len(c.related) > 0 {
			kept = append(kept, c)
		}
	}
	e.seq = kept

	// (3) Fresh size-1 candidate tracking the window's related queries.
	if len(win.qids) > 0 {
		c := &seqCandidate{
			startFrame: win.startFrame,
			windows:    1,
			sketch:     win.sketch.Clone(),
			related:    make(map[int]bool, len(win.qids)),
			reported:   newReported,
		}
		for _, qid := range win.qids {
			if e.qs.lookup(qid) != nil {
				c.related[qid] = true
			}
		}
		if len(c.related) > 0 {
			e.seq = append(e.seq, c)
		}
	}
}

package core

import (
	"math/rand"
	"testing"
)

// idStream generates a synthetic cell-id stream: content c contributes ids
// drawn from an alphabet disjoint from other contents, with temporal
// repetition mimicking real key-frame signatures.
func idStream(rng *rand.Rand, content, frames int) []uint64 {
	base := uint64(content) * 100000
	out := make([]uint64, frames)
	cur := base + uint64(rng.Intn(50))
	for i := range out {
		if rng.Float64() < 0.3 { // shot-like persistence
			cur = base + uint64(rng.Intn(50))
		}
		out[i] = cur
	}
	return out
}

// variant enumerates the method/order/index/prefilter configurations under
// test. The prefilter variants pin the Bloom tier's byte-identical-output
// contract across every suite that iterates this table.
type variant struct {
	name      string
	method    Method
	order     Order
	useIndex  bool
	prefilter bool
}

var variants = []variant{
	{"bit-seq-index", Bit, Sequential, true, false},
	{"bit-seq-noindex", Bit, Sequential, false, false},
	{"bit-geo-index", Bit, Geometric, true, false},
	{"bit-geo-noindex", Bit, Geometric, false, false},
	{"sketch-seq-index", Sketch, Sequential, true, false},
	{"sketch-seq-noindex", Sketch, Sequential, false, false},
	{"sketch-geo-index", Sketch, Geometric, true, false},
	{"sketch-geo-noindex", Sketch, Geometric, false, false},
	{"bit-seq-prefilter", Bit, Sequential, true, true},
	{"bit-geo-prefilter", Bit, Geometric, true, true},
	{"sketch-seq-prefilter", Sketch, Sequential, true, true},
	{"sketch-geo-prefilter", Sketch, Geometric, true, true},
}

func newTestEngine(t *testing.T, v variant, k int, delta float64, w int) *Engine {
	t.Helper()
	cfg := Config{
		K: k, Seed: 7, Delta: delta, Lambda: 2, WindowFrames: w,
		Order: v.order, Method: v.method, UseIndex: v.useIndex,
		PreFilter: v.prefilter,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{K: 0, Delta: 0.7, Lambda: 2, WindowFrames: 10},
		{K: 100, Delta: 0, Lambda: 2, WindowFrames: 10},
		{K: 100, Delta: 1.5, Lambda: 2, WindowFrames: 10},
		{K: 100, Delta: 0.7, Lambda: 0.5, WindowFrames: 10},
		{K: 100, Delta: 0.7, Lambda: 2, WindowFrames: 0},
		{K: 100, Delta: 0.7, Lambda: 2, WindowFrames: 10, Order: Order(9)},
		{K: 100, Delta: 0.7, Lambda: 2, WindowFrames: 10, Method: Method(9)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if err := Default(10).Validate(); err != nil {
		t.Errorf("Default config invalid: %v", err)
	}
}

func TestDefaultMatchesPaperTable1(t *testing.T) {
	c := Default(10)
	if c.K != 800 || c.Delta != 0.7 || c.Lambda != 2 || c.Method != Bit {
		t.Errorf("Default() = %+v does not match Table I", c)
	}
}

// TestDetectExactCopy: every variant must detect a verbatim copy of a query
// embedded in a longer stream, roughly at the right position.
func TestDetectExactCopy(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			query := idStream(rng, 1, 60)
			bgA := idStream(rng, 2, 100)
			bgB := idStream(rng, 3, 100)

			e := newTestEngine(t, v, 400, 0.6, 10)
			if err := e.AddQuery(1, query); err != nil {
				t.Fatal(err)
			}
			stream := append(append(append([]uint64{}, bgA...), query...), bgB...)
			for _, id := range stream {
				e.PushFrame(id)
			}
			e.Flush()

			if len(e.Matches) == 0 {
				t.Fatal("exact copy not detected")
			}
			found := false
			for _, m := range e.Matches {
				if m.QueryID != 1 {
					t.Errorf("unexpected query id %d", m.QueryID)
				}
				// Copy occupies frames [100,160); detection should start
				// within it (window granularity 10).
				if m.StartFrame >= 90 && m.StartFrame < 160 {
					found = true
				}
				if m.Similarity < 0.6 {
					t.Errorf("reported similarity %g below δ", m.Similarity)
				}
			}
			if !found {
				t.Errorf("no match positioned inside the copy: %+v", e.Matches)
			}
		})
	}
}

// TestDetectReorderedCopy: the headline robustness claim — a copy whose
// windows are permuted must still be detected, because Definition 2 is a
// set similarity.
func TestDetectReorderedCopy(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			query := idStream(rng, 1, 60)
			// Reorder the copy in 3 segments: [40:60) [0:20) [20:40).
			copySeq := append(append(append([]uint64{}, query[40:]...), query[:20]...), query[20:40]...)
			bg := idStream(rng, 2, 80)

			e := newTestEngine(t, v, 400, 0.6, 10)
			if err := e.AddQuery(1, query); err != nil {
				t.Fatal(err)
			}
			stream := append(append(append([]uint64{}, bg...), copySeq...), bg...)
			for _, id := range stream {
				e.PushFrame(id)
			}
			e.Flush()
			if len(e.Matches) == 0 {
				t.Error("temporally reordered copy not detected")
			}
		})
	}
}

// TestNoFalseMatchOnDisjointStream: a stream over a disjoint alphabet must
// produce no matches.
func TestNoFalseMatchOnDisjointStream(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			query := idStream(rng, 1, 60)
			e := newTestEngine(t, v, 400, 0.6, 10)
			if err := e.AddQuery(1, query); err != nil {
				t.Fatal(err)
			}
			for _, id := range idStream(rng, 9, 300) {
				e.PushFrame(id)
			}
			e.Flush()
			if len(e.Matches) != 0 {
				t.Errorf("false matches on disjoint content: %+v", e.Matches)
			}
		})
	}
}

func TestMultipleQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	queries := make([][]uint64, 5)
	for i := range queries {
		queries[i] = idStream(rng, 10+i, 50)
	}
	e := newTestEngine(t, variants[0], 400, 0.6, 10)
	for i, q := range queries {
		if err := e.AddQuery(i+1, q); err != nil {
			t.Fatal(err)
		}
	}
	// Stream: bg, copy of q3, bg, copy of q1, bg.
	var stream []uint64
	stream = append(stream, idStream(rng, 50, 60)...)
	stream = append(stream, queries[2]...)
	stream = append(stream, idStream(rng, 51, 60)...)
	stream = append(stream, queries[0]...)
	stream = append(stream, idStream(rng, 52, 60)...)
	for _, id := range stream {
		e.PushFrame(id)
	}
	e.Flush()
	matched := map[int]bool{}
	for _, m := range e.Matches {
		matched[m.QueryID] = true
	}
	if !matched[3] || !matched[1] {
		t.Errorf("expected matches for queries 3 and 1, got %v", matched)
	}
	if matched[2] || matched[4] || matched[5] {
		t.Errorf("spurious matches: %v", matched)
	}
}

func TestAddRemoveQueryLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q1 := idStream(rng, 1, 50)
	q2 := idStream(rng, 2, 50)
	e := newTestEngine(t, variants[0], 256, 0.6, 10)
	if err := e.AddQuery(1, q1); err != nil {
		t.Fatal(err)
	}
	if err := e.AddQuery(2, q2); err != nil {
		t.Fatal(err)
	}
	if err := e.AddQuery(1, q1); err == nil {
		t.Error("duplicate AddQuery succeeded")
	}
	if e.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d", e.NumQueries())
	}
	if err := e.RemoveQuery(1); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveQuery(1); err == nil {
		t.Error("double RemoveQuery succeeded")
	}
	// After removal only q2 can match.
	stream := append(append([]uint64{}, q1...), q2...)
	for _, id := range stream {
		e.PushFrame(id)
	}
	e.Flush()
	for _, m := range e.Matches {
		if m.QueryID == 1 {
			t.Error("removed query still matched")
		}
	}
	var got2 bool
	for _, m := range e.Matches {
		if m.QueryID == 2 {
			got2 = true
		}
	}
	if !got2 {
		t.Error("remaining query not matched")
	}
}

func TestRemoveQueryMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := idStream(rng, 1, 50)
	e := newTestEngine(t, variants[0], 256, 0.6, 10)
	if err := e.AddQuery(1, q); err != nil {
		t.Fatal(err)
	}
	for _, id := range idStream(rng, 2, 40) {
		e.PushFrame(id)
	}
	if err := e.RemoveQuery(1); err != nil {
		t.Fatal(err)
	}
	for _, id := range q {
		e.PushFrame(id)
	}
	e.Flush()
	if len(e.Matches) != 0 {
		t.Errorf("query removed mid-stream still matched: %+v", e.Matches)
	}
}

func TestFlushHandlesPartialWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := idStream(rng, 1, 25)
	e := newTestEngine(t, variants[0], 256, 0.6, 10)
	if err := e.AddQuery(1, q); err != nil {
		t.Fatal(err)
	}
	// Stream ends mid-window; the copy sits at the very end.
	for _, id := range q {
		e.PushFrame(id)
	}
	if e.Stats().Windows != 2 {
		t.Fatalf("windows before Flush = %d, want 2", e.Stats().Windows)
	}
	e.Flush()
	if e.Stats().Windows != 3 {
		t.Fatalf("windows after Flush = %d, want 3", e.Stats().Windows)
	}
	if len(e.Matches) == 0 {
		t.Error("copy spanning a partial final window not detected")
	}
}

func TestSequentialCandidateListBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := idStream(rng, 1, 50) // maxWindows = ceil(2*50/10) = 10
	e := newTestEngine(t, variants[0], 256, 0.5, 10)
	if err := e.AddQuery(1, q); err != nil {
		t.Fatal(err)
	}
	// Stream shares the query's alphabet so candidates persist.
	for _, id := range idStream(rng, 1, 600) {
		e.PushFrame(id)
	}
	if n := len(e.seq); n > 11 {
		t.Errorf("candidate list grew to %d, expiry bound ~10", n)
	}
}

func TestGeometricBucketsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := idStream(rng, 1, 320) // maxWindows = 64
	v := variant{"bit-geo-index", Bit, Geometric, true, false}
	e := newTestEngine(t, v, 256, 0.5, 10)
	if err := e.AddQuery(1, q); err != nil {
		t.Fatal(err)
	}
	for _, id := range idStream(rng, 1, 3000) {
		e.PushFrame(id)
	}
	// Binary counter over <= 64 windows: at most ~log2(64)+2 buckets.
	if n := len(e.shards[0].geo); n > 9 {
		t.Errorf("geometric order stores %d buckets, want O(log)", n)
	}
}

func TestStatsMethodSplit(t *testing.T) {
	// Bit method must do (almost) all candidate work in signature ops;
	// Sketch method in sketch ops.
	rng := rand.New(rand.NewSource(10))
	q := idStream(rng, 1, 60)
	stream := idStream(rng, 1, 400) // same alphabet: plenty of candidates

	run := func(m Method) Stats {
		e := newTestEngine(t, variant{"x", m, Sequential, true, false}, 256, 0.6, 10)
		if err := e.AddQuery(1, q); err != nil {
			t.Fatal(err)
		}
		for _, id := range stream {
			e.PushFrame(id)
		}
		e.Flush()
		return e.Stats()
	}
	bit := run(Bit)
	sk := run(Sketch)
	if bit.SigOrs == 0 || bit.SigTests == 0 {
		t.Errorf("Bit method recorded no signature ops: %+v", bit)
	}
	if sk.SketchCombines == 0 || sk.SketchCompares == 0 {
		t.Errorf("Sketch method recorded no sketch ops: %+v", sk)
	}
	if sk.SigOrs != 0 {
		t.Errorf("Sketch method performed %d signature ORs", sk.SigOrs)
	}
	if bit.SketchCombines != 0 {
		t.Errorf("Bit/sequential performed %d sketch combines", bit.SketchCombines)
	}
}

func TestPruningReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := idStream(rng, 1, 60)
	// Background shares a little content with the query so candidates are
	// born but should be pruned quickly.
	stream := make([]uint64, 0, 500)
	for i := 0; i < 500; i++ {
		if i%10 == 0 {
			stream = append(stream, q[rng.Intn(len(q))])
		} else {
			stream = append(stream, 900000+uint64(rng.Intn(40)))
		}
	}
	run := func(disable bool) Stats {
		cfg := Config{K: 256, Seed: 7, Delta: 0.8, Lambda: 2, WindowFrames: 10,
			Order: Sequential, Method: Bit, UseIndex: true, DisablePrune: disable}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AddQuery(1, q); err != nil {
			t.Fatal(err)
		}
		for _, id := range stream {
			e.PushFrame(id)
		}
		e.Flush()
		return e.Stats()
	}
	pruned := run(false)
	unpruned := run(true)
	if pruned.SignatureSum >= unpruned.SignatureSum {
		t.Errorf("pruning did not reduce signatures: %d vs %d",
			pruned.SignatureSum, unpruned.SignatureSum)
	}
}

func TestIndexAndScanAgreeOnMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	queries := make([][]uint64, 8)
	for i := range queries {
		queries[i] = idStream(rng, 20+i, 50)
	}
	var stream []uint64
	stream = append(stream, idStream(rng, 40, 70)...)
	stream = append(stream, queries[4]...)
	stream = append(stream, idStream(rng, 41, 70)...)

	collect := func(useIndex bool) map[int]bool {
		e := newTestEngine(t, variant{"x", Bit, Sequential, useIndex, false}, 400, 0.6, 10)
		for i, q := range queries {
			if err := e.AddQuery(i+1, q); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range stream {
			e.PushFrame(id)
		}
		e.Flush()
		got := map[int]bool{}
		for _, m := range e.Matches {
			got[m.QueryID] = true
		}
		return got
	}
	withIdx := collect(true)
	without := collect(false)
	if len(withIdx) != len(without) {
		t.Errorf("index %v vs scan %v matched query sets differ", withIdx, without)
	}
	for qid := range withIdx {
		if !without[qid] {
			t.Errorf("query %d matched with index only", qid)
		}
	}
	if !withIdx[5] {
		t.Error("inserted copy of query 5 not detected")
	}
}

func TestEngineEmptyQueriesNoCrash(t *testing.T) {
	e := newTestEngine(t, variants[0], 64, 0.7, 5)
	for i := 0; i < 100; i++ {
		e.PushFrame(uint64(i))
	}
	e.Flush()
	if len(e.Matches) != 0 || e.Stats().Windows != 20 {
		t.Errorf("empty-query engine misbehaved: %+v", e.Stats())
	}
}

func TestOnMatchCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := idStream(rng, 1, 40)
	e := newTestEngine(t, variants[0], 256, 0.6, 10)
	if err := e.AddQuery(1, q); err != nil {
		t.Fatal(err)
	}
	var calls int
	e.OnMatch = func(m Match) {
		calls++
		if m.QueryID != 1 {
			t.Errorf("callback got query %d", m.QueryID)
		}
	}
	for _, id := range q {
		e.PushFrame(id)
	}
	e.Flush()
	if calls != len(e.Matches) || calls == 0 {
		t.Errorf("callback invoked %d times, %d matches recorded", calls, len(e.Matches))
	}
}

func TestAvgSignaturesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	q := idStream(rng, 1, 50)
	e := newTestEngine(t, variants[0], 256, 0.6, 10)
	if err := e.AddQuery(1, q); err != nil {
		t.Fatal(err)
	}
	for _, id := range idStream(rng, 1, 300) {
		e.PushFrame(id)
	}
	st := e.Stats()
	if st.AvgSignatures() <= 0 {
		t.Errorf("AvgSignatures = %g on a related stream", st.AvgSignatures())
	}
	if st.AvgCandidates() <= 0 {
		t.Errorf("AvgCandidates = %g", st.AvgCandidates())
	}
	var zero Stats
	if zero.AvgSignatures() != 0 || zero.AvgCandidates() != 0 {
		t.Error("zero stats averages not 0")
	}
}

func TestAddQueryValidation(t *testing.T) {
	e := newTestEngine(t, variants[0], 64, 0.7, 5)
	if err := e.AddQuery(1, nil); err == nil {
		t.Error("empty query accepted")
	}
	if err := e.RemoveQuery(99); err == nil {
		t.Error("removing unknown query succeeded")
	}
}

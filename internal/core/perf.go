// Perf-span wiring: how an Engine joins the performance-attribution layer.
package core

import "vdsms/internal/perfobs"

// SetPerf points the engine at a span collector with the given stream
// label ("" for an anonymous engine). Every subsequently processed window
// offers itself to the collector's sampler; with a nil collector (the
// default) the kernel skips span work entirely. Call before pushing
// frames, from the engine's own goroutine.
func (e *Engine) SetPerf(c *perfobs.Collector, label string) {
	e.perf = c
	e.perfLabel = label
}

// PerfArmed reports whether span capture could sample a window right now —
// the cue for front ends that must pre-arm their own timing (the facade's
// decode/extract timer).
func (e *Engine) PerfArmed() bool {
	return e.perf != nil && e.perf.Armed()
}

// AddPendingSpanNS stages an out-of-kernel stage duration (front-end
// decode/extract, fleet queue-wait or worker-hop) for the engine's next
// processed window. If that window loses the sampling draw the staged
// values are discarded with it, so attribution never smears across
// windows. Call from the engine's owning goroutine only.
func (e *Engine) AddPendingSpanNS(st perfobs.Stage, ns int64) {
	e.pendingSpanNS[st] += ns
}

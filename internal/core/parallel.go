// Parallel per-window matching kernel.
//
// The queries are partitioned into nshards = max(1, Config.Workers) shards
// by qindex.ShardOf. Per basic window the engine forks once: each shard
// probes the query set for its own queries and immediately evaluates its
// own candidate state against the window — there is no barrier between the
// probe and the candidate phase because shard s's candidates only ever
// track shard s's queries. Matches produced by the shards are buffered and,
// after the join, merged in the exact order the serial kernel would have
// emitted them, so OnMatch ordering and the Matches slice are identical for
// every worker count. With Workers=0 the single shard runs inline on the
// pushing goroutine and the merge degenerates to an append — the original
// serial path, byte for byte.
package core

import (
	"sort"
	"sync"

	"vdsms/internal/bitsig"
	"vdsms/internal/trace"
)

// engineShard owns the per-query mutable matching state of one query
// shard. Exactly one goroutine touches a shard during the parallel phase;
// between windows only the engine's own goroutine does.
type engineShard struct {
	id    int
	spine bool // shard 0 also accounts the query-independent spine work

	// Geometric order replica: every shard maintains the full bucket list
	// (structure is query-independent, so replicas stay congruent), with
	// per-bucket maps holding only this shard's queries.
	geo         []*geoBucket
	geoReported map[geoKey]bool

	// Per-window scratch, reset by runShards.
	newReported map[int]bool // Sequential: window-alone reports this window
	pending     []pendingMatch
	d           shardDelta
}

// shardDelta carries one window's operation counts out of a shard; folded
// into Stats serially after the join. Every field partitions the serial
// counter exactly (per-query work) or is accounted by one shard only
// (spine work), so Stats.Totals() is worker-count invariant.
type shardDelta struct {
	sketchCombines, sketchCompares int64
	sigOrs, sigTests               int64
	probeComparisons               int64
	signatureSum, candidateSum     int64
	probed, pruned                 int64
	// emptySearches is the window's pre-filter false-positive count
	// (admitted rows with an empty equal search). Identical on every shard
	// by construction, so only the spine's value is folded.
	emptySearches int64
	// probeNS and combineNS are this shard's stage spans for the window,
	// written by the shard itself and read after the join by the telemetry
	// fold (zero when timing is off).
	probeNS, combineNS int64
}

// pendingMatch is a shard-local match awaiting the deterministic merge.
// The (phase, start, qid) triple is unique within a window and totally
// orders the window's matches as the serial kernel emits them.
type pendingMatch struct {
	phase int8 // Sequential: 0 window-alone test, 1 candidate extension
	start int
	qid   int
	m     Match
}

// push buffers a match produced by this shard.
func (s *engineShard) push(phase int8, start, qid int, m Match) {
	s.pending = append(s.pending, pendingMatch{phase: phase, start: start, qid: qid, m: m})
}

// newMatch builds a Match the way the serial kernel's report() did.
func newMatch(qid, startFrame, endFrame, windows int, sim float64) Match {
	return Match{
		QueryID:    qid,
		StartFrame: startFrame,
		EndFrame:   endFrame,
		DetectedAt: endFrame,
		Similarity: sim,
		Windows:    windows,
	}
}

// runShards resets per-window scratch and runs fn once per shard: inline
// when there is a single shard, otherwise shard 0 on the calling goroutine
// and one goroutine per further shard, joining before returning.
func (e *Engine) runShards(fn func(*engineShard)) {
	for _, s := range e.shards {
		s.pending = s.pending[:0]
		s.d = shardDelta{}
		s.newReported = nil
	}
	if e.nshards == 1 {
		fn(e.shards[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(e.nshards - 1)
	for _, s := range e.shards[1:] {
		go func(s *engineShard) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	fn(e.shards[0])
	wg.Wait()
}

// emitPending merges the shards' buffered matches into serial emission
// order and emits them. Each shard's buffer is already sorted by the merge
// key (shards walk their candidates in spine order with query ids
// ascending), so the single-shard case skips sorting entirely.
//
// Sequential serial order: window-alone tests by ascending qid first, then
// candidate extensions by ascending candidate start (the spine is oldest
// first), qids ascending within a candidate — key (phase, start asc, qid).
// Geometric serial order: the window-alone bucket has the maximal start and
// each cascade step extends further into the past — key (start desc, qid).
func (e *Engine) emitPending(win *windowResult) {
	if e.nshards == 1 {
		for _, pm := range e.shards[0].pending {
			e.emitOne(pm, win)
		}
		return
	}
	n := 0
	for _, s := range e.shards {
		n += len(s.pending)
	}
	if n == 0 {
		return
	}
	all := make([]pendingMatch, 0, n)
	for _, s := range e.shards {
		all = append(all, s.pending...)
	}
	if e.cfg.Order == Sequential {
		sort.Slice(all, func(i, j int) bool {
			a, b := all[i], all[j]
			if a.phase != b.phase {
				return a.phase < b.phase
			}
			if a.start != b.start {
				return a.start < b.start
			}
			return a.qid < b.qid
		})
	} else {
		sort.Slice(all, func(i, j int) bool {
			a, b := all[i], all[j]
			if a.start != b.start {
				return a.start > b.start
			}
			return a.qid < b.qid
		})
	}
	for _, pm := range all {
		e.emitOne(pm, win)
	}
}

// emitOne records the match's provenance (when tracing is on) and emits
// it. Match ids are assigned by the journal here, in emission order, so
// ids as well as records are worker-count invariant.
func (e *Engine) emitOne(pm pendingMatch, win *windowResult) {
	if win.tr != nil {
		var audit *trace.AuditResult
		if res, ok := e.auditRes[auditKey{pm.start, pm.qid}]; ok {
			audit = res
		}
		win.tr.RecordMatch(pm.qid, pm.m.StartFrame, pm.m.EndFrame,
			pm.m.DetectedAt, pm.m.Windows, pm.m.Similarity, audit)
	}
	e.emit(pm.m)
}

// foldShardStats folds the window's per-shard deltas into the engine
// counters and the cumulative per-shard breakdown.
func (e *Engine) foldShardStats() {
	for i, s := range e.shards {
		d := s.d
		e.stats.SketchCombines += d.sketchCombines
		e.stats.SketchCompares += d.sketchCompares
		e.stats.SigOrs += d.sigOrs
		e.stats.SigTests += d.sigTests
		e.stats.ProbeComparisons += d.probeComparisons
		e.stats.SignatureSum += d.signatureSum
		e.stats.CandidateSum += d.candidateSum
		sh := &e.stats.Shards[i]
		sh.Probed += d.probed
		sh.Pruned += d.pruned
		sh.Compared += d.sigTests + d.sketchCompares
		e.telShardCompared[i].Add(d.sigTests + d.sketchCompares)
		telProbeRelated.Add(d.probed)
		telProbePruned.Add(d.pruned)
		if s.spine && d.emptySearches > 0 {
			e.pfEmptySearches += d.emptySearches
			telPrefilterFP.Add(d.emptySearches)
		}
	}
}

// allEmpty reports whether every shard slot of a per-shard signature map
// slice is empty (the candidate tracks no query anywhere).
func allEmptySigs(slots []map[int]*bitsig.Signature) bool {
	for _, m := range slots {
		if len(m) > 0 {
			return false
		}
	}
	return true
}

// allEmptySets is allEmptySigs for related-set slots.
func allEmptySets(slots []map[int]bool) bool {
	for _, m := range slots {
		if len(m) > 0 {
			return false
		}
	}
	return true
}

package core

import (
	"fmt"
	"sort"

	"vdsms/internal/bitsig"
	"vdsms/internal/minhash"
	"vdsms/internal/qindex"
)

// queryInfo is the per-query state held by a QuerySet.
type queryInfo struct {
	id     int
	frames int // length L in key frames
	sketch minhash.Sketch
}

// Engine is the streaming detector for one stream. It consumes one cell id
// per key frame via PushFrame; matches are delivered to the OnMatch
// callback (if set) and accumulated in Matches.
//
// An Engine is not safe for concurrent use, but engines sharing a QuerySet
// may run in parallel goroutines — probing is read-locked. Do not call
// AddQuery/RemoveQuery from inside OnMatch (the query set's lock is held
// during window processing).
type Engine struct {
	cfg Config
	qs  *QuerySet

	// Stream state.
	frame  int      // key frames consumed
	curIDs []uint64 // ids of the window being filled

	seq         []*seqCandidate // Sequential order candidate list C_L
	geo         []*geoBucket    // Geometric order buckets, oldest first
	geoReported map[geoKey]bool // match dedup for Geometric cascades

	stats   Stats
	Matches []Match
	// OnMatch, when non-nil, is invoked synchronously for every match.
	OnMatch func(Match)
}

// NewEngine validates cfg and builds an engine with its own private query
// set.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	qs, err := NewQuerySet(cfg.K, cfg.Seed, cfg.UseIndex)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, qs: qs}, nil
}

// NewEngineWith builds an engine monitoring one stream against a shared
// QuerySet (the multi-stream deployment: one query set, one engine per
// concurrent stream). cfg.K must match the set's K; cfg.Seed and
// cfg.UseIndex are taken from the set.
func NewEngineWith(cfg Config, qs *QuerySet) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.K != qs.K() {
		return nil, fmt.Errorf("core: engine K=%d but query set K=%d", cfg.K, qs.K())
	}
	return &Engine{cfg: cfg, qs: qs}, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Queries returns the engine's query set (shared or private).
func (e *Engine) Queries() *QuerySet { return e.qs }

// Family exposes the hash family so callers can sketch query material with
// identical functions.
func (e *Engine) Family() *minhash.Family { return e.qs.Family() }

// Stats returns a snapshot of the operation counters.
func (e *Engine) Stats() Stats { return e.stats }

// NumQueries returns the number of subscribed queries.
func (e *Engine) NumQueries() int { return e.qs.Len() }

// AddQuery subscribes a continuous query given the cell ids of its key
// frames. With a shared QuerySet this affects every sharing engine.
func (e *Engine) AddQuery(id int, cellIDs []uint64) error {
	return e.qs.Add(id, cellIDs)
}

// RemoveQuery unsubscribes a query. Candidates tracking it drop it at
// their next combination.
func (e *Engine) RemoveQuery(id int) error {
	return e.qs.Remove(id)
}

// PushFrame feeds the cell id of the next key frame. When a basic window
// fills, it is processed.
func (e *Engine) PushFrame(cellID uint64) {
	e.curIDs = append(e.curIDs, cellID)
	e.frame++
	e.stats.Frames++
	if len(e.curIDs) == e.cfg.WindowFrames {
		e.processWindow()
		e.curIDs = e.curIDs[:0]
	}
}

// Flush processes a final partial window, if any. Call at end of stream.
func (e *Engine) Flush() {
	if len(e.curIDs) > 0 {
		e.processWindow()
		e.curIDs = e.curIDs[:0]
	}
}

// curWindowStartFrame returns the first frame index of the window
// currently being processed.
func (e *Engine) curWindowStartFrame() int { return e.frame - len(e.curIDs) }

// maxWindowsOf returns ⌈λL/w⌉ for a query, under this engine's window.
func (e *Engine) maxWindowsOf(q *queryInfo) int { return e.cfg.maxWindows(q.frames) }

// processWindow sketches the filled window, determines its related queries,
// and updates the candidate list under the configured order and method.
func (e *Engine) processWindow() {
	e.stats.Windows++
	wsk := e.qs.Family().SketchSet(e.curIDs)
	win := &windowResult{
		sketch:     wsk,
		startFrame: e.curWindowStartFrame(),
		endFrame:   e.frame,
		related:    map[int]*bitsig.Signature{},
	}
	if e.qs.Len() > 0 {
		if e.cfg.Method == Bit {
			po := e.probeBit(wsk)
			for _, r := range po.Related {
				win.related[r.QID] = r.Sig
			}
		} else {
			win.qids = e.relatedForSketch(wsk)
		}
	}

	switch e.cfg.Order {
	case Sequential:
		e.processSequential(win)
	default:
		e.processGeometric(win)
	}
}

// probeBit runs the configured prober for the Bit method and accounts its
// cost. Without the index, the scan performs one full sketch comparison
// per query to derive each signature.
func (e *Engine) probeBit(wsk minhash.Sketch) qindex.ProbeOutput {
	po, scanned := e.qs.probe(wsk, e.pruneDelta())
	e.stats.SketchCompares += int64(scanned)
	e.stats.ProbeComparisons += int64(po.Comparisons)
	return po
}

// pruneDelta is the δ handed to probers for Lemma 2 pruning: the real
// threshold, or 0 (never prune) when the ablation flag disables pruning.
func (e *Engine) pruneDelta() float64 {
	if e.cfg.DisablePrune {
		return 0
	}
	return e.cfg.Delta
}

// relatedForSketch returns the query ids the Sketch method must compare
// with this window: the probe's R_L with the index, or every query without.
func (e *Engine) relatedForSketch(wsk minhash.Sketch) []int {
	if e.qs.usingIndex() {
		po, _ := e.qs.probe(wsk, e.pruneDelta())
		e.stats.ProbeComparisons += int64(po.Comparisons)
		ids := make([]int, 0, len(po.Related))
		for _, r := range po.Related {
			ids = append(ids, r.QID)
		}
		sort.Ints(ids)
		return ids
	}
	ids := e.qs.IDs()
	sort.Ints(ids)
	return ids
}

// windowResult carries everything downstream stages need about one basic
// window.
type windowResult struct {
	sketch     minhash.Sketch
	startFrame int
	endFrame   int
	related    map[int]*bitsig.Signature // Bit: window-vs-query signatures
	qids       []int                     // Sketch: related query ids, sorted
}

// report emits a match.
func (e *Engine) report(qid, startFrame, endFrame, windows int, sim float64) {
	m := Match{
		QueryID:    qid,
		StartFrame: startFrame,
		EndFrame:   endFrame,
		DetectedAt: endFrame,
		Similarity: sim,
		Windows:    windows,
	}
	e.stats.Matches++
	e.Matches = append(e.Matches, m)
	if e.OnMatch != nil {
		e.OnMatch(m)
	}
}

// relatedQIDs returns the probe's related query ids in deterministic order.
func (w *windowResult) relatedQIDs() []int {
	ids := make([]int, 0, len(w.related))
	for qid := range w.related {
		ids = append(ids, qid)
	}
	sort.Ints(ids)
	return ids
}

package core

import (
	"fmt"
	"sort"
	"time"

	"vdsms/internal/bitsig"
	"vdsms/internal/minhash"
	"vdsms/internal/perfobs"
	"vdsms/internal/qindex"
	"vdsms/internal/telemetry"
	"vdsms/internal/trace"
)

// queryInfo is the per-query state held by a QuerySet.
type queryInfo struct {
	id     int
	frames int // length L in key frames
	sketch minhash.Sketch
	// cellIDs retains the query's raw cell ids for the sampled exact audit
	// (trace.go). Nil for queries restored from a VQS1 stream — the format
	// carries sketches only — in which case their decisions are audit-skipped.
	cellIDs []uint64
}

// Engine is the streaming detector for one stream. It consumes one cell id
// per key frame via PushFrame (or batches via PushFrames); matches are
// delivered to the OnMatch callback (if set) and accumulated in Matches.
//
// An Engine is not safe for concurrent use — its intra-stream parallelism
// is configured with Config.Workers and managed internally — but engines
// sharing a QuerySet may run in parallel goroutines: probing is read-locked
// and lookups go through an immutable snapshot. Do not call
// AddQuery/RemoveQuery from inside OnMatch (the query set's lock may be
// held during window processing).
type Engine struct {
	cfg     Config
	qs      *QuerySet
	nshards int

	// Stream state.
	frame  int      // key frames consumed
	curIDs []uint64 // ids of the window being filled
	// planeVersion is the query-plane version the most recent window was
	// processed against — the whole window runs on one captured plane, so
	// this is the observable face of the copy-on-write churn contract.
	planeVersion uint64

	// seq is the Sequential order candidate list C_L — the spine. Scalar
	// fields and the combined sketch are maintained serially; per-query
	// state lives in per-shard slots owned by one worker each.
	seq []*seqCandidate
	// shards own the per-query mutable state of the matching kernel
	// (Geometric buckets are replicated per shard; see geometric.go).
	shards []*engineShard

	stats   Stats
	Matches []Match
	// OnMatch, when non-nil, is invoked synchronously for every match, on
	// the goroutine calling PushFrame/PushFrames/Flush.
	OnMatch func(Match)

	// SlowWindow, when positive, arms the slow-window tracer: any basic
	// window whose processing exceeds it is reported through OnSlowWindow
	// with a per-stage breakdown. Set both before pushing frames.
	SlowWindow time.Duration
	// SlowVar, when non-nil, overrides SlowWindow with a runtime-adjustable
	// budget read once per window (shared across a detector lineage so
	// POST /debug/slow-window reaches every live engine).
	SlowVar *SlowBudget
	// OnSlowWindow receives slow-window traces; invoked synchronously on
	// the pushing goroutine, so keep it cheap.
	OnSlowWindow func(SlowWindowTrace)
	// OnWindowDone, when non-nil, receives every basic window's total
	// processing duration, synchronously on the pushing goroutine — the
	// overload controller's feed. Setting it forces the timed path (the
	// same clock reads telemetry uses), so leave it nil unless a consumer
	// is actually listening.
	OnWindowDone func(total time.Duration)

	// Decision-provenance state (see trace.go). trc is nil unless tracing
	// was armed; its enabled flag is sampled once per window into
	// windowResult.tr, the pointer every kernel recording site checks.
	trc     *trace.Recorder
	nearEps float64
	// Sampled exact-audit channel (SetAudit): every auditEvery-th report
	// and prune decision is recomputed exactly from the retained raw
	// cell-id windows in auditWins and scored against auditBound.
	auditEvery   int
	auditBound   float64
	auditWins    map[int][]uint64
	auditRes     map[auditKey]*trace.AuditResult
	auditReports uint64
	auditPrunes  uint64

	// telShardCompared are this engine's per-shard comparison counters
	// (shared process-wide by shard id via the telemetry registry).
	telShardCompared []*telemetry.Counter

	// perf is the span collector this engine samples into (nil = spans
	// off; see SetPerf) and perfLabel the stream label on exported spans.
	// pendingSpanNS stages out-of-kernel stage durations (front-end
	// decode/extract from the facade, queue-wait/worker-hop from the fleet)
	// for the next processed window; consumed — sampled or not — at the
	// window's start so stale spans never leak across windows.
	perf          *perfobs.Collector
	perfLabel     string
	pendingSpanNS [perfobs.NumStages]int64

	// Pre-filter accounting for this engine's windows, outside Stats so
	// the snapshot codec is untouched (the tier is a runtime choice).
	// pfRowProbes/pfRowRejects accrue serially in processWindow;
	// pfEmptySearches is folded from the spine shard after the join.
	pfRowProbes, pfRowRejects, pfEmptySearches int64
}

// NewEngine validates cfg and builds an engine with its own private query
// set.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	qs, err := NewQuerySet(cfg.K, cfg.Seed, cfg.UseIndex)
	if err != nil {
		return nil, err
	}
	return newEngine(cfg, qs), nil
}

// NewEngineWith builds an engine monitoring one stream against a shared
// QuerySet (the multi-stream deployment: one query set, one engine per
// concurrent stream). cfg.K must match the set's K; cfg.Seed and
// cfg.UseIndex are taken from the set.
func NewEngineWith(cfg Config, qs *QuerySet) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.K != qs.K() {
		return nil, fmt.Errorf("core: engine K=%d but query set K=%d", cfg.K, qs.K())
	}
	return newEngine(cfg, qs), nil
}

func newEngine(cfg Config, qs *QuerySet) *Engine {
	n := cfg.Workers
	if n < 1 {
		n = 1
	}
	if cfg.PreFilter {
		// Idempotent; with a shared QuerySet the first pre-filter engine
		// turns the tier on for every sharer (it is output-neutral).
		qs.EnablePreFilter()
	}
	e := &Engine{cfg: cfg, qs: qs, nshards: n}
	e.shards = make([]*engineShard, n)
	e.telShardCompared = make([]*telemetry.Counter, n)
	for i := range e.shards {
		e.shards[i] = &engineShard{id: i, spine: i == 0}
		e.telShardCompared[i] = shardComparedCounter(i)
	}
	e.stats.Shards = make([]ShardStats, n)
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Queries returns the engine's query set (shared or private).
func (e *Engine) Queries() *QuerySet { return e.qs }

// Family exposes the hash family so callers can sketch query material with
// identical functions.
func (e *Engine) Family() *minhash.Family { return e.qs.Family() }

// Stats returns a snapshot of the operation counters.
func (e *Engine) Stats() Stats {
	st := e.stats
	st.Shards = append([]ShardStats(nil), e.stats.Shards...)
	return st
}

// PreFilterStats reports the pre-filter tier's activity: this engine's
// row-probe outcomes plus the shared filter's current footprint. Zero
// values throughout when the tier is off.
type PreFilterStats struct {
	// Enabled reports whether the tier is active on the query set.
	Enabled bool
	// RowProbes and RowRejects count this engine's per-window filter
	// tests and O(1) rejections; RowRejects/RowProbes is the fraction of
	// per-row candidate walks skipped before any index work.
	RowProbes, RowRejects int64
	// EmptySearches counts admitted rows whose equal search found nothing
	// — the filter's false positives (each costs one wasted binary search).
	EmptySearches int64
	// Bytes and Keys describe the shared filter's current footprint;
	// Rebuilds counts churn-triggered reconstructions.
	Bytes, Keys int
	Rebuilds    int64
}

// PreFilterStats returns the tier's accounting for this engine and its
// query set.
func (e *Engine) PreFilterStats() PreFilterStats {
	bytes, keys, rebuilds, enabled := e.qs.preFilterStats()
	return PreFilterStats{
		Enabled:       enabled,
		RowProbes:     e.pfRowProbes,
		RowRejects:    e.pfRowRejects,
		EmptySearches: e.pfEmptySearches,
		Bytes:         bytes,
		Keys:          keys,
		Rebuilds:      rebuilds,
	}
}

// NumQueries returns the number of subscribed queries.
func (e *Engine) NumQueries() int { return e.qs.Len() }

// PlaneVersion returns the query-plane version the last processed window
// ran against (0 before any window). Because a window captures its plane
// once, this lags QuerySet.Version while churn overlaps an in-flight
// window and catches up at the next window boundary.
func (e *Engine) PlaneVersion() uint64 { return e.planeVersion }

// AddQuery subscribes a continuous query given the cell ids of its key
// frames. With a shared QuerySet this affects every sharing engine.
func (e *Engine) AddQuery(id int, cellIDs []uint64) error {
	return e.qs.Add(id, cellIDs)
}

// AddQueries subscribes a batch of continuous queries in one bulk index
// build; see QuerySet.AddBatch for the cost argument. Use it when
// subscribing large query populations (the queryscale workloads).
func (e *Engine) AddQueries(ids []int, cellIDs [][]uint64) error {
	return e.qs.AddBatch(ids, cellIDs)
}

// RemoveQuery unsubscribes a query. Candidates tracking it drop it at
// their next combination.
func (e *Engine) RemoveQuery(id int) error {
	return e.qs.Remove(id)
}

// PushFrame feeds the cell id of the next key frame. When a basic window
// fills, it is processed.
func (e *Engine) PushFrame(cellID uint64) {
	e.curIDs = append(e.curIDs, cellID)
	e.frame++
	e.stats.Frames++
	telFrames.Inc()
	if len(e.curIDs) == e.cfg.WindowFrames {
		e.processWindow()
		e.curIDs = e.curIDs[:0]
	}
}

// PushFrames feeds a batch of key-frame cell ids, processing every window
// that fills. It is equivalent to calling PushFrame per id but amortises
// the per-frame call overhead, which matters once window processing fans
// out to workers.
func (e *Engine) PushFrames(cellIDs []uint64) {
	telFrames.Add(int64(len(cellIDs)))
	for len(cellIDs) > 0 {
		need := e.cfg.WindowFrames - len(e.curIDs)
		if need > len(cellIDs) {
			e.curIDs = append(e.curIDs, cellIDs...)
			e.frame += len(cellIDs)
			e.stats.Frames += len(cellIDs)
			return
		}
		e.curIDs = append(e.curIDs, cellIDs[:need]...)
		e.frame += need
		e.stats.Frames += need
		e.processWindow()
		e.curIDs = e.curIDs[:0]
		cellIDs = cellIDs[need:]
	}
}

// PendingFrames returns how many frames of the currently filling window
// have been consumed — callers batching PushFrames can align batches to
// window boundaries so match latency equals the per-frame path's.
func (e *Engine) PendingFrames() int { return len(e.curIDs) }

// Flush processes a final partial window, if any. Call at end of stream.
func (e *Engine) Flush() {
	if len(e.curIDs) > 0 {
		e.processWindow()
		e.curIDs = e.curIDs[:0]
	}
}

// curWindowStartFrame returns the first frame index of the window
// currently being processed.
func (e *Engine) curWindowStartFrame() int { return e.frame - len(e.curIDs) }

// maxWindowsOf returns ⌈λL/w⌉ for a query, under this engine's window.
func (e *Engine) maxWindowsOf(q *queryInfo) int { return e.cfg.maxWindows(q.frames) }

// processWindow sketches the filled window, fans the probe and candidate
// evaluation out across the query shards, and merges the shards' matches
// deterministically. With Workers=0 the single shard runs inline and the
// merge is the identity — the original serial path.
//
// Stage timing (sketch → probe → combine → merge, plus the window total)
// runs when telemetry is enabled or the slow-window tracer is armed: two
// clock reads per serial stage and two per shard, feeding the
// vcd_stage_duration_seconds histograms and OnSlowWindow. The timed path
// allocates nothing beyond what the untimed kernel already does.
func (e *Engine) processWindow() {
	e.stats.Windows++
	telWindows.Inc()
	// Span sampling: one atomic load when the collector is armed but this
	// window loses the cadence draw; nothing at all when perf is unset.
	var sp *perfobs.Span
	if e.perf != nil {
		sp = e.perf.Begin(e.perfLabel)
		if sp != nil {
			sp.NS = e.pendingSpanNS
		}
		e.pendingSpanNS = [perfobs.NumStages]int64{}
	}
	slow := e.slowBudget()
	timed := telemetry.Enabled() || (slow > 0 && e.OnSlowWindow != nil) || e.OnWindowDone != nil || sp != nil
	var t0, t1 time.Time
	if timed {
		t0 = time.Now()
	}
	wsk := e.qs.Family().SketchSet(e.curIDs)
	var sketchD time.Duration
	if timed {
		t1 = time.Now()
		sketchD = t1.Sub(t0)
	}
	sp.AllocMark(perfobs.StageSketch)
	// The entire window is processed against one immutable plane captured
	// here with a single atomic load: probes, candidate evaluation and the
	// pre-filter mask all see the same subscription version even while a
	// concurrent AddQueries/Remove publishes a successor. In-flight windows
	// therefore stay on the old version; churn lands at the next window.
	view := e.qs.view()
	e.planeVersion = view.version
	win := &windowResult{
		sketch:     wsk,
		startFrame: e.curWindowStartFrame(),
		endFrame:   e.frame,
		maxW:       e.globalMaxWindows(view),
		relatedSh:  make([]map[int]*bitsig.Signature, e.nshards),
		qidsSh:     make([][]int, e.nshards),
	}
	// The pre-filter row mask is computed once, serially, before the shard
	// fork: it depends only on the window sketch (not the shard), so doing
	// it here avoids K×nshards redundant filter probes and keeps the mask —
	// and hence the probe output — identical for every worker count.
	if e.cfg.PreFilter && len(view.queries) > 0 {
		mask, probed, rejected := view.windowRowMask(wsk)
		win.rowMask = mask
		e.pfRowProbes += int64(probed)
		e.pfRowRejects += int64(rejected)
		telPrefilterProbes.Add(int64(probed))
		telPrefilterRejects.Add(int64(rejected))
	}
	// The tracer's enabled flag is sampled once here: every recording site
	// downstream checks win.tr, so a mid-window toggle never tears a
	// window's event set and the disabled path is a single nil comparison.
	if e.trc.Enabled() {
		win.tr = e.trc
		win.nearEps = e.nearEps
		if e.auditEvery > 0 {
			e.retainAuditWindow(win)
		}
	}

	if e.cfg.Order == Sequential {
		e.seqPrePass(win)
	}
	// The serial spine work before the fork accrues to the merge stage,
	// together with its post-join counterpart below.
	var preD time.Duration
	if timed {
		preD = time.Since(t1)
	}

	e.runShards(func(s *engineShard) {
		var ts time.Time
		if timed {
			ts = time.Now()
		}
		if len(view.queries) > 0 {
			e.probeShard(s, win, wsk, view)
		}
		if timed {
			now := time.Now()
			s.d.probeNS = now.Sub(ts).Nanoseconds()
			ts = now
		}
		switch e.cfg.Order {
		case Sequential:
			e.shardSequential(s, win, view)
		default:
			e.shardGeometric(s, win, view)
		}
		if timed {
			s.d.combineNS = time.Since(ts).Nanoseconds()
		}
	})
	// The shard fork's allocations (probe + combine interleave across
	// workers) are attributed to the probe stage as one block.
	sp.AllocMark(perfobs.StageProbe)

	var tMerge time.Time
	if timed {
		tMerge = time.Now()
	}
	if e.cfg.Order == Sequential {
		e.seqPostPass(win, view)
	}
	if win.tr != nil {
		evs := win.tr.FoldWindow()
		if e.auditEvery > 0 {
			e.auditWindow(evs, view)
		}
		win.tr.Publish(evs)
	}
	e.emitPending(win)
	e.foldShardStats()
	sp.AllocMark(perfobs.StageMerge)
	if timed {
		end := time.Now()
		total := end.Sub(t0)
		e.observeWindow(win, slow, sketchD, preD+end.Sub(tMerge), total, sp)
		if e.OnWindowDone != nil {
			e.OnWindowDone(total)
		}
	}
}

// probeShard determines shard s's related queries for the window: bit
// signatures under the Bit method, sorted query ids under Sketch.
func (e *Engine) probeShard(s *engineShard, win *windowResult, wsk minhash.Sketch, view *queryPlane) {
	if e.cfg.Method == Bit {
		po, scanned := view.probeShard(wsk, e.pruneDelta(), s.id, e.nshards, win.rowMask)
		s.d.sketchCompares += int64(scanned)
		s.d.probeComparisons += int64(po.Comparisons)
		s.d.probed += int64(len(po.Related))
		s.d.pruned += int64(len(po.Pruned))
		// Every shard of one window observes the same empty-search count
		// (row emptiness is shard-independent); the spine's copy is folded
		// into the engine counter and telemetry after the join.
		if s.spine {
			s.d.emptySearches += int64(po.EmptySearches)
		}
		rel := make(map[int]*bitsig.Signature, len(po.Related))
		for _, r := range po.Related {
			rel[r.QID] = r.Sig
		}
		win.relatedSh[s.id] = rel
		return
	}
	win.qidsSh[s.id] = e.relatedForSketchShard(s, win, wsk, view)
}

// pruneDelta is the δ handed to probers for Lemma 2 pruning: the real
// threshold, or 0 (never prune) when the ablation flag disables pruning.
func (e *Engine) pruneDelta() float64 {
	if e.cfg.DisablePrune {
		return 0
	}
	return e.cfg.Delta
}

// relatedForSketchShard returns the query ids of shard s the Sketch method
// must compare with this window: the shard's slice of the probe's R_L with
// the index, or every owned query without.
func (e *Engine) relatedForSketchShard(s *engineShard, win *windowResult, wsk minhash.Sketch, view *queryPlane) []int {
	if view.usingIndex() {
		po, _ := view.probeShard(wsk, e.pruneDelta(), s.id, e.nshards, win.rowMask)
		s.d.probeComparisons += int64(po.Comparisons)
		s.d.probed += int64(len(po.Related))
		s.d.pruned += int64(len(po.Pruned))
		if s.spine {
			s.d.emptySearches += int64(po.EmptySearches)
		}
		ids := make([]int, 0, len(po.Related))
		for _, r := range po.Related {
			ids = append(ids, r.QID)
		}
		sort.Ints(ids)
		return ids
	}
	ids := make([]int, 0, len(view.queries)/e.nshards+1)
	for id := range view.queries {
		if qindex.ShardOf(id, e.nshards) == s.id {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// globalMaxWindows returns the largest ⌈λL/w⌉ over the snapshot's queries
// (1 when no queries are subscribed, so the structures stay bounded).
func (e *Engine) globalMaxWindows(view *queryPlane) int {
	if view.maxFrames == 0 {
		return 1
	}
	return e.cfg.maxWindows(view.maxFrames)
}

// windowResult carries everything downstream stages need about one basic
// window, partitioned by query shard.
type windowResult struct {
	sketch     minhash.Sketch
	startFrame int
	endFrame   int
	maxW       int                         // global candidate bound ⌈λL_max/w⌉
	relatedSh  []map[int]*bitsig.Signature // Bit: per-shard window-vs-query signatures
	qidsSh     [][]int                     // Sketch: per-shard related query ids, sorted
	// rowMask is the pre-filter admission mask, computed once per window
	// before the shard fork; nil (admit all rows) when the tier is off.
	rowMask qindex.RowMask
	// tr is the lifecycle-event recorder for this window, nil when tracing
	// is off — the single guard every kernel recording site checks.
	tr      *trace.Recorder
	nearEps float64 // near-miss band: estimates in [δ−ε, δ) are journaled
}

// relatedLen returns the total number of related queries across shards.
func (w *windowResult) relatedLen() int {
	n := 0
	for _, m := range w.relatedSh {
		n += len(m)
	}
	for _, ids := range w.qidsSh {
		n += len(ids)
	}
	return n
}

// emit records a merged match.
func (e *Engine) emit(m Match) {
	e.stats.Matches++
	telMatches.Inc()
	e.Matches = append(e.Matches, m)
	if e.OnMatch != nil {
		e.OnMatch(m)
	}
}

package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"vdsms/internal/snapshot"
)

// sweepScript builds a deterministic workload for one engine variant, small
// enough that the sweep below can checkpoint at every window boundary.
func sweepScript(seed int64, order Order, method Method, useIndex bool) *fuzzScript {
	rng := rand.New(rand.NewSource(seed))
	fs := &fuzzScript{
		cfg: Config{
			K:            64,
			Seed:         rng.Int63(),
			Delta:        0.4,
			Lambda:       2,
			WindowFrames: 7,
			Order:        order,
			Method:       method,
			UseIndex:     useIndex,
		},
		removeAt: map[int]int{},
	}
	nq := 4
	for q := 1; q <= nq; q++ {
		fs.queries = append(fs.queries, idStream(rng, rng.Intn(4), rng.Intn(40)+10))
	}
	frames := 200
	for i := 0; i < frames; i++ {
		fs.frames = append(fs.frames, uint64(rng.Intn(4))*100000+uint64(rng.Intn(30)))
	}
	// Splice true copies of query material into the stream so the sweep
	// crosses real candidate growth and match reports, not just empty state.
	for q, at := range []int{15, 60, 120, 160} {
		copy(fs.frames[at:], fs.queries[q%nq])
	}
	// One mid-stream removal so the sweep crosses subscription churn.
	fs.removeAt[frames/2] = 2
	return fs
}

// runSplit replays fs with a crash at frame index cut: the first engine
// (checkpointWorkers) consumes frames[:cut] and is checkpointed through a
// full serialise/deserialise cycle; the second engine (restoreWorkers)
// resumes from the decoded state and consumes the rest. It returns the
// concatenated matches and the final stats.
func runSplit(t *testing.T, fs *fuzzScript, cut, checkpointWorkers, restoreWorkers int) ([]Match, Stats) {
	t.Helper()
	cfg := fs.cfg
	cfg.Workers = checkpointWorkers
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, ids := range fs.queries {
		if err := e.AddQuery(i+1, ids); err != nil {
			t.Fatal(err)
		}
	}
	removed := map[int]bool{}
	push := func(e *Engine, from, to int) {
		for i := from; i < to; i++ {
			e.PushFrame(fs.frames[i])
			if victim, ok := fs.removeAt[i]; ok && !removed[victim] {
				removed[victim] = true
				if err := e.RemoveQuery(victim); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	push(e, 0, cut)

	// Serialise the exported state through the real codec so the sweep also
	// exercises the on-disk format, not just the in-memory conversion.
	var buf bytes.Buffer
	ck := &snapshot.Checkpoint{Engine: *e.ExportState()}
	if err := snapshot.Write(&buf, ck); err != nil {
		t.Fatalf("cut %d: %v", cut, err)
	}
	dec, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("cut %d: %v", cut, err)
	}
	cfg.Workers = restoreWorkers
	e2, err := RestoreEngine(cfg, &dec.Engine)
	if err != nil {
		t.Fatalf("cut %d: restore: %v", cut, err)
	}
	push(e2, cut, len(fs.frames))
	e2.Flush()
	return append(append([]Match(nil), e.Matches...), e2.Matches...), e2.Stats()
}

// TestCrashPointSweep is the headline determinism guarantee of the
// checkpoint subsystem: for every engine variant, snapshotting at every
// window boundary (and mid-window) and restoring — at the same or a
// different worker count — yields exactly the matches and stats totals of
// an uninterrupted run.
func TestCrashPointSweep(t *testing.T) {
	variants := []struct {
		name     string
		order    Order
		method   Method
		useIndex bool
	}{
		{"seq-bit-index", Sequential, Bit, true},
		{"seq-sketch-noindex", Sequential, Sketch, false},
		{"geo-bit-noindex", Geometric, Bit, false},
		{"geo-sketch-index", Geometric, Sketch, true},
	}
	workerCombos := [][2]int{{0, 0}, {4, 4}, {0, 4}, {4, 0}}
	for vi, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			fs := sweepScript(int64(7000+vi), v.order, v.method, v.useIndex)
			wantM, wantS := fs.replay(t, 0)
			if len(wantM) == 0 {
				t.Fatalf("script produced no matches; sweep would prove nothing")
			}
			var cuts []int
			for f := 0; f <= len(fs.frames); f += fs.cfg.WindowFrames {
				cuts = append(cuts, f)
			}
			// Mid-window cuts: the checkpoint carries a partial window.
			cuts = append(cuts, 3, len(fs.frames)/2+2, len(fs.frames)-1)
			for _, combo := range workerCombos {
				for _, cut := range cuts {
					gotM, gotS := runSplit(t, fs, cut, combo[0], combo[1])
					if !reflect.DeepEqual(gotM, wantM) {
						t.Fatalf("cut %d workers %d→%d: matches diverge\nwant %+v\ngot  %+v",
							cut, combo[0], combo[1], wantM, gotM)
					}
					if !reflect.DeepEqual(gotS.Totals(), wantS.Totals()) {
						t.Fatalf("cut %d workers %d→%d: stats totals diverge\nwant %+v\ngot  %+v",
							cut, combo[0], combo[1], wantS.Totals(), gotS.Totals())
					}
				}
			}
		})
	}
}

// TestRestoreRejectsIncompatibleConfig pins the loud-failure contract: a
// checkpoint restored under a drifted configuration is refused with an
// error naming the mismatched fields.
func TestRestoreRejectsIncompatibleConfig(t *testing.T) {
	fs := sweepScript(1, Sequential, Bit, true)
	e, err := NewEngine(fs.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, ids := range fs.queries {
		if err := e.AddQuery(i+1, ids); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range fs.frames[:50] {
		e.PushFrame(id)
	}
	st := e.ExportState()

	bad := fs.cfg
	bad.Delta = 0.9
	if _, err := RestoreEngine(bad, st); err == nil || !strings.Contains(err.Error(), "Delta") {
		t.Errorf("Delta drift: err = %v, want mention of Delta", err)
	}
	bad = fs.cfg
	bad.Seed++
	if _, err := RestoreEngine(bad, st); err == nil || !strings.Contains(err.Error(), "Seed") {
		t.Errorf("Seed drift: err = %v, want mention of Seed", err)
	}
	// Workers is a runtime choice, never a compatibility wall.
	ok := fs.cfg
	ok.Workers = 3
	if _, err := RestoreEngine(ok, st); err != nil {
		t.Errorf("Workers change rejected: %v", err)
	}
}

// TestExportStateCanonical pins the cross-worker byte identity that makes
// checkpoints portable: the same logical state exported from engines at
// different worker counts serialises to identical bytes.
func TestExportStateCanonical(t *testing.T) {
	fs := sweepScript(2, Geometric, Bit, false)
	for _, frames := range []int{49, 140, 200} {
		var blobs [][]byte
		for _, workers := range []int{0, 2, 5} {
			cfg := fs.cfg
			cfg.Workers = workers
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, ids := range fs.queries {
				if err := e.AddQuery(i+1, ids); err != nil {
					t.Fatal(err)
				}
			}
			for _, id := range fs.frames[:frames] {
				e.PushFrame(id)
			}
			var buf bytes.Buffer
			if err := snapshot.Write(&buf, &snapshot.Checkpoint{Engine: *e.ExportState()}); err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, buf.Bytes())
		}
		for i := 1; i < len(blobs); i++ {
			if !bytes.Equal(blobs[0], blobs[i]) {
				t.Errorf("frames=%d: checkpoint bytes differ between worker counts", frames)
			}
		}
	}
}

package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"vdsms/internal/snapshot"
)

// The pre-filter tier's contract is byte-identical output: with
// Config.PreFilter on, Matches (order included) and Stats totals — down to
// ProbeComparisons, since rejected rows are exactly the empty searches —
// must equal the unfiltered run's, under any worker count, across churn,
// and through checkpoint/restore.

// prefSchedule is a deterministic workload with mid-stream subscription
// churn: queries added up front, some removed and re-added while frames
// flow, converging on a final set. The removals are numerous enough to
// trip the filter's rebuild-on-threshold path.
type prefSchedule struct {
	cfg     Config
	queries [][]uint64 // 1-based ids
	frames  []uint64
	// ops[i] runs after frame i: +id adds query id back, −id removes it.
	ops map[int][]int
}

func newPrefSchedule(seed int64, method Method, order Order) *prefSchedule {
	rng := rand.New(rand.NewSource(seed))
	ps := &prefSchedule{
		cfg: Config{
			K: 96, Seed: rng.Int63(), Delta: 0.5, Lambda: 2, WindowFrames: 8,
			Order: order, Method: method, UseIndex: true,
		},
		ops: map[int][]int{},
	}
	for q := 0; q < 6; q++ {
		ps.queries = append(ps.queries, idStream(rng, q+1, rng.Intn(30)+20))
	}
	for i := 0; i < 260; i++ {
		ps.frames = append(ps.frames, uint64(rng.Intn(6)+1)*100000+uint64(rng.Intn(40)))
	}
	for q, at := range []int{20, 70, 130, 190} {
		copy(ps.frames[at:], ps.queries[q%len(ps.queries)])
	}
	// Churn: remove 3, 5; re-add 3; remove 1. Final set {2,3,4,6}.
	ps.ops[50] = []int{-3}
	ps.ops[90] = []int{-5}
	ps.ops[140] = []int{+3}
	ps.ops[200] = []int{-1}
	return ps
}

// run replays the schedule on one engine configuration.
func (ps *prefSchedule) run(t *testing.T, preFilter bool, workers int) ([]Match, Stats) {
	t.Helper()
	cfg := ps.cfg
	cfg.PreFilter = preFilter
	cfg.Workers = workers
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, ids := range ps.queries {
		if err := e.AddQuery(i+1, ids); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range ps.frames {
		e.PushFrame(f)
		for _, op := range ps.ops[i] {
			if op > 0 {
				err = e.AddQuery(op, ps.queries[op-1])
			} else {
				err = e.RemoveQuery(-op)
			}
			if err != nil {
				t.Fatalf("frame %d op %d: %v", i, op, err)
			}
		}
	}
	e.Flush()
	return e.Matches, e.Stats()
}

// TestPreFilterOutputEquivalence: the tier must be invisible in the output
// — same matches, same stats totals — for every method/order combination
// and worker count, under subscription churn.
func TestPreFilterOutputEquivalence(t *testing.T) {
	for _, v := range []struct {
		name   string
		method Method
		order  Order
	}{
		{"bit-seq", Bit, Sequential},
		{"bit-geo", Bit, Geometric},
		{"sketch-seq", Sketch, Sequential},
		{"sketch-geo", Sketch, Geometric},
	} {
		t.Run(v.name, func(t *testing.T) {
			ps := newPrefSchedule(11, v.method, v.order)
			wantM, wantS := ps.run(t, false, 0)
			if len(wantM) == 0 {
				t.Fatal("baseline run found no matches; workload too weak")
			}
			for _, workers := range []int{0, 4} {
				gotM, gotS := ps.run(t, true, workers)
				if !reflect.DeepEqual(gotM, wantM) {
					t.Errorf("Workers=%d: pre-filter changed matches\noff: %+v\non:  %+v", workers, wantM, gotM)
				}
				if !reflect.DeepEqual(gotS.Totals(), wantS.Totals()) {
					t.Errorf("Workers=%d: pre-filter changed stats totals\noff: %+v\non:  %+v",
						workers, wantS.Totals(), gotS.Totals())
				}
			}
		})
	}
}

// TestPreFilterChurnFuzz: random interleaved Add/Remove schedules, applied
// identically with the tier on and off, must keep outputs equal — the
// churn path exercises AddSketch, dead-key counting and threshold rebuilds.
func TestPreFilterChurnFuzz(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		ps := newPrefSchedule(int64(400+trial), Bit, Sequential)
		// Overwrite the fixed ops with a random schedule over ids 1..6,
		// tracking membership so every op is valid on both engines.
		ps.ops = map[int][]int{}
		in := map[int]bool{1: true, 2: true, 3: true, 4: true, 5: true, 6: true}
		for i := 10; i < len(ps.frames); i += rng.Intn(25) + 8 {
			id := rng.Intn(6) + 1
			if in[id] {
				ps.ops[i] = append(ps.ops[i], -id)
				in[id] = false
			} else {
				ps.ops[i] = append(ps.ops[i], +id)
				in[id] = true
			}
		}
		wantM, wantS := ps.run(t, false, 0)
		gotM, gotS := ps.run(t, true, 2)
		if !reflect.DeepEqual(gotM, wantM) {
			t.Fatalf("trial %d: churned pre-filter run diverges\noff: %+v\non:  %+v", trial, wantM, gotM)
		}
		if !reflect.DeepEqual(gotS.Totals(), wantS.Totals()) {
			t.Fatalf("trial %d: stats totals diverge\noff: %+v\non:  %+v",
				trial, wantS.Totals(), gotS.Totals())
		}
	}
}

// TestPreFilterSnapshotRoundTrip is the checkpoint satellite: a pre-filter
// engine checkpointed mid-stream and restored — with the tier on or off,
// at a different worker count — must finish the stream with output
// byte-identical to the uninterrupted run. PreFilter is excluded from the
// snapshot fingerprint (like Workers, it is a runtime choice); the filter
// is rebuilt from the restored query set.
func TestPreFilterSnapshotRoundTrip(t *testing.T) {
	ps := newPrefSchedule(21, Bit, Sequential)
	uninterruptedM, uninterruptedS := ps.run(t, true, 0)
	if len(uninterruptedM) == 0 {
		t.Fatal("workload produced no matches")
	}

	for _, rc := range []struct {
		name              string
		ckptPF, restorePF bool
		restoreWorkers    int
	}{
		{"on-to-on", true, true, 0},
		{"on-to-on-parallel", true, true, 4},
		{"on-to-off", true, false, 0},
		{"off-to-on", false, true, 0},
	} {
		t.Run(rc.name, func(t *testing.T) {
			cfg := ps.cfg
			cfg.PreFilter = rc.ckptPF
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, ids := range ps.queries {
				if err := e.AddQuery(i+1, ids); err != nil {
					t.Fatal(err)
				}
			}
			push := func(e *Engine, from, to int) {
				for i := from; i < to; i++ {
					e.PushFrame(ps.frames[i])
					for _, op := range ps.ops[i] {
						if op > 0 {
							err = e.AddQuery(op, ps.queries[op-1])
						} else {
							err = e.RemoveQuery(-op)
						}
						if err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			cut := 110 // mid-stream, after the first removal
			push(e, 0, cut)

			// Through the real codec, so the filter's absence from the
			// durable form is exercised, not just ExportState.
			var buf bytes.Buffer
			if err := snapshot.Write(&buf, &snapshot.Checkpoint{Engine: *e.ExportState()}); err != nil {
				t.Fatal(err)
			}
			dec, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			cfg.PreFilter = rc.restorePF
			cfg.Workers = rc.restoreWorkers
			e2, err := RestoreEngine(cfg, &dec.Engine)
			if err != nil {
				t.Fatal(err)
			}
			push(e2, cut, len(ps.frames))
			e2.Flush()

			gotM := append(append([]Match(nil), e.Matches...), e2.Matches...)
			if !reflect.DeepEqual(gotM, uninterruptedM) {
				t.Errorf("matches diverge from uninterrupted run\nwant: %+v\ngot:  %+v", uninterruptedM, gotM)
			}
			if got := e2.Stats().Totals(); !reflect.DeepEqual(got, uninterruptedS.Totals()) {
				t.Errorf("stats totals diverge\nwant: %+v\ngot:  %+v", uninterruptedS.Totals(), got)
			}
		})
	}
}

// TestPreFilterValidation: the tier requires the Hash-Query index.
func TestPreFilterValidation(t *testing.T) {
	cfg := Default(10)
	cfg.UseIndex = false
	cfg.PreFilter = true
	if err := cfg.Validate(); err == nil {
		t.Error("PreFilter without UseIndex accepted")
	}
	cfg.UseIndex = true
	if err := cfg.Validate(); err != nil {
		t.Errorf("PreFilter with UseIndex rejected: %v", err)
	}
}

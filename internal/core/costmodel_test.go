package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// The paper's cost model (equation 4) says per-window work is
//
//	Sequential: αC_comp + (αC_comp + C_comb)·⌈λL/w⌉
//	Geometric:  αC_comp + (αC_comp + C_comb)·log(⌈λL/w⌉)
//
// These tests verify the structural claims on the engine's own operation
// counters: combination counts grow linearly with ⌈λL/w⌉ under Sequential
// order and logarithmically under Geometric order.

// relatedStream cycles the query's own ids so every window shares content
// with the query, stays related, and candidates survive to their expiry
// bound — the worst case the cost model describes.
func relatedStream(q []uint64, frames int) []uint64 {
	stream := make([]uint64, 0, frames+len(q))
	for len(stream) < frames {
		stream = append(stream, q...)
	}
	return stream[:frames]
}

// opsPerWindow runs a fully-related stream against one query of length
// qFrames and returns the average signature-OR (Bit method) operations per
// window once the candidate list is warm.
func opsPerWindow(t *testing.T, order Order, qFrames int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	q := idStream(rng, 1, qFrames)
	cfg := Config{K: 64, Seed: 7, Delta: 0.01, Lambda: 2, WindowFrames: 10,
		Order: order, Method: Bit, UseIndex: true, DisablePrune: true}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddQuery(1, q); err != nil {
		t.Fatal(err)
	}
	for _, id := range relatedStream(q, 6000) {
		e.PushFrame(id)
	}
	st := e.Stats()
	return float64(st.SigOrs) / float64(st.Windows)
}

func TestSequentialCostLinearInCandidates(t *testing.T) {
	// ⌈λL/w⌉ doubles from 10 to 20 → combinations per window should
	// roughly double.
	small := opsPerWindow(t, Sequential, 50)  // maxWindows = 10
	large := opsPerWindow(t, Sequential, 100) // maxWindows = 20
	ratio := large / small
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("sequential ops ratio %.2f for 2× candidate bound, want ≈2 (%.1f → %.1f)",
			ratio, small, large)
	}
}

func TestGeometricCostLogarithmic(t *testing.T) {
	// Quadrupling ⌈λL/w⌉ (16 → 64) should grow per-window work by roughly
	// log(64)/log(16) = 1.5, nowhere near the 4× of Sequential order.
	small := opsPerWindow(t, Geometric, 80)  // maxWindows = 16
	large := opsPerWindow(t, Geometric, 320) // maxWindows = 64
	ratio := large / small
	// Strictly sublinear: a 4× larger bound must not cost anywhere near 4×.
	// (Exact log behaviour is disturbed by the counter's cap handling.)
	if ratio > 3 {
		t.Errorf("geometric ops ratio %.2f for 4× candidate bound, want clearly sublinear (%.1f → %.1f)",
			ratio, small, large)
	}
	// And Sequential at the same large bound must be far costlier.
	seq := opsPerWindow(t, Sequential, 320)
	if seq < 3*large {
		t.Errorf("sequential ops/window %.1f not ≫ geometric %.1f at ⌈λL/w⌉=64", seq, large)
	}
}

func TestGeometricStorageLogarithmic(t *testing.T) {
	// Average stored candidates (buckets) should stay O(log maxWindows).
	rng := rand.New(rand.NewSource(10))
	q := idStream(rng, 1, 320) // maxWindows = 64
	cfg := Config{K: 64, Seed: 7, Delta: 0.01, Lambda: 2, WindowFrames: 10,
		Order: Geometric, Method: Bit, UseIndex: true, DisablePrune: true}
	e, _ := NewEngine(cfg)
	e.AddQuery(1, q)
	for _, id := range relatedStream(q, 6000) {
		e.PushFrame(id)
	}
	avg := e.Stats().AvgCandidates()
	if avg > 2*math.Log2(64)+2 {
		t.Errorf("geometric stores %.1f candidates on average for a 64-window bound", avg)
	}
	// Sequential, by contrast, stores ≈maxWindows.
	cfg.Order = Sequential
	es, _ := NewEngine(cfg)
	es.AddQuery(1, q)
	for _, id := range relatedStream(q, 6000) {
		es.PushFrame(id)
	}
	if seqAvg := es.Stats().AvgCandidates(); seqAvg < 4*avg {
		t.Errorf("sequential stores %.1f candidates vs geometric %.1f; expected ≫", seqAvg, avg)
	}
}

// TestEngineDeterministic: identical inputs yield identical matches and
// stats — required for reproducible experiments.
func TestEngineDeterministic(t *testing.T) {
	build := func() (Stats, []Match) {
		rng := rand.New(rand.NewSource(11))
		q := idStream(rng, 1, 60)
		stream := append(append(idStream(rng, 2, 100), q...), idStream(rng, 3, 100)...)
		e, err := NewEngine(Config{K: 128, Seed: 3, Delta: 0.6, Lambda: 2,
			WindowFrames: 10, Order: Sequential, Method: Bit, UseIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		e.AddQuery(1, q)
		for _, id := range stream {
			e.PushFrame(id)
		}
		e.Flush()
		return e.Stats(), e.Matches
	}
	s1, m1 := build()
	s2, m2 := build()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if len(m1) != len(m2) {
		t.Fatalf("match counts differ: %d vs %d", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Errorf("match %d differs: %+v vs %+v", i, m1[i], m2[i])
		}
	}
}

// TestEngineDeterministicMultiQuery extends the determinism check to many
// overlapping queries, which exercises the sorted-iteration report paths.
func TestEngineDeterministicMultiQuery(t *testing.T) {
	build := func(order Order) []Match {
		rng := rand.New(rand.NewSource(12))
		e, err := NewEngine(Config{K: 128, Seed: 3, Delta: 0.4, Lambda: 2,
			WindowFrames: 10, Order: order, Method: Bit, UseIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		// Overlapping queries drawn from the same alphabet so one window
		// often relates to several queries at once.
		for q := 1; q <= 6; q++ {
			e.AddQuery(q, idStream(rand.New(rand.NewSource(int64(q/2))), 1, 40))
		}
		for _, id := range idStream(rng, 1, 400) {
			e.PushFrame(id)
		}
		e.Flush()
		return e.Matches
	}
	for _, order := range []Order{Sequential, Geometric} {
		a, b := build(order), build(order)
		if len(a) != len(b) {
			t.Fatalf("%v: %d vs %d matches", order, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: match %d differs: %+v vs %+v", order, i, a[i], b[i])
			}
		}
	}
}

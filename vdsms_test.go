package vdsms

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// clip synthesises an encoded clip with the test defaults: 96×80, 2 fps
// all-intra, so every frame is a key frame and KeyFPS=2 configs apply.
func clip(t testing.TB, seed int64, seconds float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := Synthesize(&buf, VideoOptions{
		Seconds: seconds, FPS: 2, W: 96, H: 80, Seed: seed, Quality: 80, GOP: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.K = 400
	cfg.Delta = 0.6
	return cfg
}

func TestDefaultConfigIsPaperTable1(t *testing.T) {
	c := DefaultConfig()
	if c.K != 800 || c.Delta != 0.7 || c.U != 4 || c.D != 5 || c.WindowSec != 5 || c.Lambda != 2 {
		t.Errorf("DefaultConfig = %+v does not match Table I", c)
	}
}

func TestNewDetectorValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.WindowSec = 0
	if _, err := NewDetector(bad); err == nil {
		t.Error("WindowSec=0 accepted")
	}
	bad = DefaultConfig()
	bad.KeyFPS = 0
	if _, err := NewDetector(bad); err == nil {
		t.Error("KeyFPS=0 accepted")
	}
	bad = DefaultConfig()
	bad.Delta = 2
	if _, err := NewDetector(bad); err == nil {
		t.Error("Delta=2 accepted")
	}
	bad = DefaultConfig()
	bad.U = 0
	if _, err := NewDetector(bad); err == nil {
		t.Error("U=0 accepted")
	}
}

func TestDetectorEndToEnd(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	query := clip(t, 1, 20)
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	if det.NumQueries() != 1 {
		t.Fatalf("NumQueries = %d", det.NumQueries())
	}

	// Stream: background, the query clip verbatim, background.
	var stream bytes.Buffer
	err = ComposeStream(&stream, 80, 1,
		bytes.NewReader(clip(t, 100, 30)),
		bytes.NewReader(query),
		bytes.NewReader(clip(t, 101, 30)),
	)
	if err != nil {
		t.Fatal(err)
	}

	var live []Match
	det.OnMatch = func(m Match) { live = append(live, m) }
	matches, err := det.Monitor(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("embedded copy not detected")
	}
	if len(live) != len(matches) {
		t.Errorf("OnMatch delivered %d, Monitor returned %d", len(live), len(matches))
	}
	// Copy occupies stream time [30s, 50s).
	found := false
	for _, m := range matches {
		if m.QueryID != 1 {
			t.Errorf("unexpected query %d", m.QueryID)
		}
		if m.Similarity < 0.6 {
			t.Errorf("similarity %g below δ", m.Similarity)
		}
		if m.DetectedAt >= 30*time.Second && m.DetectedAt <= 60*time.Second {
			found = true
		}
	}
	if !found {
		t.Errorf("no detection near the copy: %+v", matches)
	}
}

func TestDetectorEditedCopy(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	query := clip(t, 2, 24)
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	// Manufacture an edited, temporally reordered copy.
	var edited bytes.Buffer
	err = ApplyEdits(&edited, bytes.NewReader(query), EditOptions{
		Brightness:    18,
		Contrast:      1.1,
		NoiseAmp:      4,
		ReorderSegSec: 6,
		Seed:          7,
		Quality:       75,
		GOP:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	err = ComposeStream(&stream, 75, 1,
		bytes.NewReader(clip(t, 200, 30)),
		bytes.NewReader(edited.Bytes()),
		bytes.NewReader(clip(t, 201, 30)),
	)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := det.Monitor(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Error("edited, reordered copy not detected")
	}
}

func TestDetectorNoFalsePositives(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 3, 20))); err != nil {
		t.Fatal(err)
	}
	matches, err := det.Monitor(bytes.NewReader(clip(t, 300, 90)))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("false positives on unrelated stream: %+v", matches)
	}
	if det.Stats().Windows == 0 {
		t.Error("no windows processed")
	}
}

func TestMonitorContinuesAcrossCalls(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	query := clip(t, 4, 20)
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	// Segment 1: background only. Segment 2: the copy.
	m1, err := det.Monitor(bytes.NewReader(clip(t, 400, 20)))
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != 0 {
		t.Fatalf("segment 1 produced matches: %+v", m1)
	}
	m2, err := det.Monitor(bytes.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	if len(m2) == 0 {
		t.Fatal("copy in second segment not detected")
	}
	// Positions continue across segments: detection after the 20 s mark.
	if m2[0].DetectedAt < 20*time.Second {
		t.Errorf("DetectedAt %v not offset by first segment", m2[0].DetectedAt)
	}
}

func TestMonitorRejectsIncompatibleKeyRate(t *testing.T) {
	det, err := NewDetector(testConfig()) // expects 2 key frames/s
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// 30 fps with GOP 1 → 30 key frames/s.
	if err := Synthesize(&buf, VideoOptions{Seconds: 2, FPS: 30, W: 96, H: 80, GOP: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Monitor(&buf); err == nil {
		t.Error("incompatible key-frame rate accepted")
	}
}

func TestRemoveQuery(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := clip(t, 5, 16)
	if err := det.AddQuery(1, bytes.NewReader(q)); err != nil {
		t.Fatal(err)
	}
	if err := det.RemoveQuery(1); err != nil {
		t.Fatal(err)
	}
	if err := det.RemoveQuery(1); err == nil {
		t.Error("double remove succeeded")
	}
	matches, err := det.Monitor(bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Error("removed query still matched")
	}
}

func TestAddQueryErrors(t *testing.T) {
	det, _ := NewDetector(testConfig())
	if err := det.AddQuery(1, bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk query accepted")
	}
}

// TestPreFilterFacade pins the facade contract of the pre-filter tier:
// batch subscription via AddQueries and Config.PreFilter must reproduce
// the incremental, unfiltered detector's matches exactly.
func TestPreFilterFacade(t *testing.T) {
	q1, q2 := clip(t, 21, 16), clip(t, 22, 16)
	var stream bytes.Buffer
	err := ComposeStream(&stream, 70, 1,
		bytes.NewReader(clip(t, 120, 20)),
		bytes.NewReader(q1),
		bytes.NewReader(clip(t, 121, 20)),
	)
	if err != nil {
		t.Fatal(err)
	}

	base, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := base.AddQuery(1, bytes.NewReader(q1)); err != nil {
		t.Fatal(err)
	}
	if err := base.AddQuery(2, bytes.NewReader(q2)); err != nil {
		t.Fatal(err)
	}
	want, err := base.Monitor(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline found no matches; equality check is vacuous")
	}

	cfg := testConfig()
	cfg.PreFilter = true
	pre, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.AddQueries([]int{1, 2}, []io.Reader{bytes.NewReader(q1), bytes.NewReader(q2)}); err != nil {
		t.Fatal(err)
	}
	if pre.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d after batch add", pre.NumQueries())
	}
	got, err := pre.Monitor(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("prefilter run found %d matches, baseline %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("match %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}

	bad := testConfig()
	bad.PreFilter = true
	bad.NoIndex = true
	if _, err := NewDetector(bad); err == nil {
		t.Error("PreFilter+NoIndex accepted")
	}
	det, _ := NewDetector(testConfig())
	if err := det.AddQueries([]int{1}, nil); err == nil {
		t.Error("mismatched ids/clips accepted")
	}
	if err := det.AddQueries([]int{3}, []io.Reader{bytes.NewReader([]byte("junk"))}); err == nil {
		t.Error("junk batch clip accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := clip(t, 9, 5)
	b := clip(t, 9, 5)
	if !bytes.Equal(a, b) {
		t.Error("Synthesize not deterministic")
	}
}

func TestApplyEditsChangesBytesKeepsFormat(t *testing.T) {
	src := clip(t, 10, 10)
	var dst bytes.Buffer
	if err := ApplyEdits(&dst, bytes.NewReader(src), EditOptions{Brightness: 30, GOP: 1}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(dst.Bytes(), src) {
		t.Error("edit produced identical stream")
	}
	// Output must still be a decodable MVC1 stream.
	det, _ := NewDetector(testConfig())
	if err := det.AddQuery(1, bytes.NewReader(dst.Bytes())); err != nil {
		t.Errorf("edited clip not decodable: %v", err)
	}
}

func TestComposeStreamValidations(t *testing.T) {
	if err := ComposeStream(io.Discard, 75, 1); err == nil {
		t.Error("empty compose accepted")
	}
	small := func() []byte {
		var b bytes.Buffer
		Synthesize(&b, VideoOptions{Seconds: 1, FPS: 2, W: 64, H: 48, GOP: 1})
		return b.Bytes()
	}()
	big := clip(t, 11, 1)
	if err := ComposeStream(io.Discard, 75, 1,
		bytes.NewReader(big), bytes.NewReader(small)); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

package vdsms

import (
	"bytes"
	"testing"
)

// TestArchiveMatchedSegment verifies the paper's "store only the relevant
// sequences" feature: when a match fires, the detector hands back a
// standalone clip of the matched stream segment, decodable on its own and
// itself re-matchable against the query.
func TestArchiveMatchedSegment(t *testing.T) {
	cfg := testConfig()
	cfg.ArchiveSec = 60
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	query := clip(t, 71, 20)
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}

	var clips [][]byte
	det.OnMatchClip = func(m Match, c []byte) {
		clips = append(clips, append([]byte(nil), c...))
	}

	var stream bytes.Buffer
	err = ComposeStream(&stream, 80, 1,
		bytes.NewReader(clip(t, 900, 30)),
		bytes.NewReader(query),
		bytes.NewReader(clip(t, 901, 30)),
	)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := det.Monitor(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || len(clips) != len(matches) {
		t.Fatalf("%d matches but %d archived clips", len(matches), len(clips))
	}

	// The archived clip must itself contain the copy: feeding it to a
	// fresh detector re-detects the query.
	verify, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	rematches, err := verify.Monitor(bytes.NewReader(clips[len(clips)-1]))
	if err != nil {
		t.Fatalf("archived clip not decodable: %v", err)
	}
	if len(rematches) == 0 {
		t.Error("archived clip does not contain the matched copy")
	}
}

// TestArchiveRetentionBound: the archive never exceeds the configured
// window, so long streams stay memory-bounded.
func TestArchiveRetentionBound(t *testing.T) {
	cfg := testConfig()
	cfg.ArchiveSec = 10 // retain only 10 s
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	query := clip(t, 72, 16)
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	var archived [][]byte
	det.OnMatchClip = func(m Match, c []byte) { archived = append(archived, c) }

	var stream bytes.Buffer
	err = ComposeStream(&stream, 80, 1,
		bytes.NewReader(clip(t, 910, 120)), // long lead-in: retention must roll
		bytes.NewReader(query),
	)
	if err != nil {
		t.Fatal(err)
	}
	streamSize := stream.Len()
	if _, err := det.Monitor(&stream); err != nil {
		t.Fatal(err)
	}
	if len(archived) == 0 {
		t.Fatal("no archived clips")
	}
	// 10 s retained out of a 136 s stream: the clip must be far smaller
	// than the whole stream.
	if len(archived[0]) >= streamSize/4 {
		t.Errorf("archived clip %d bytes, stream %d — retention not bounded",
			len(archived[0]), streamSize)
	}
}

// TestArchiveDisabledNoCallback: without ArchiveSec the clip callback stays
// silent even if set.
func TestArchiveDisabledNoCallback(t *testing.T) {
	det, err := NewDetector(testConfig()) // ArchiveSec zero
	if err != nil {
		t.Fatal(err)
	}
	query := clip(t, 73, 16)
	det.AddQuery(1, bytes.NewReader(query))
	called := false
	det.OnMatchClip = func(Match, []byte) { called = true }
	ms, err := det.Monitor(bytes.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no match")
	}
	if called {
		t.Error("OnMatchClip fired without ArchiveSec")
	}
}

package vdsms

import (
	"bytes"
	"sync"
	"testing"
)

func TestNewStreamSharesQueries(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	query := clip(t, 21, 20)
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	sibling, err := det.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	if sibling.NumQueries() != 1 {
		t.Fatalf("sibling sees %d queries", sibling.NumQueries())
	}
	// Subscribing through the sibling is visible to the original.
	if err := sibling.AddQuery(2, bytes.NewReader(clip(t, 22, 16))); err != nil {
		t.Fatal(err)
	}
	if det.NumQueries() != 2 {
		t.Error("shared subscription not visible")
	}
	// The sibling detects the copy on its own stream; positions are
	// independent of the original detector's stream state.
	var stream bytes.Buffer
	err = ComposeStream(&stream, 80, 1,
		bytes.NewReader(clip(t, 300, 20)), bytes.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := sibling.Monitor(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Error("sibling missed the copy")
	}
}

func TestNewStreamConcurrent(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]byte{clip(t, 31, 16), clip(t, 32, 16), clip(t, 33, 16)}
	for i, q := range queries {
		if err := det.AddQuery(i+1, bytes.NewReader(q)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	results := make([][]Match, 3)
	for c := 0; c < 3; c++ {
		d := det
		if c > 0 {
			var err error
			d, err = det.NewStream()
			if err != nil {
				t.Fatal(err)
			}
		}
		var stream bytes.Buffer
		err := ComposeStream(&stream, 80, 1,
			bytes.NewReader(clip(t, int64(400+c), 24)),
			bytes.NewReader(queries[c]),
			bytes.NewReader(clip(t, int64(500+c), 24)),
		)
		if err != nil {
			t.Fatal(err)
		}
		data := stream.Bytes()
		wg.Add(1)
		go func(c int, d *Detector) {
			defer wg.Done()
			ms, err := d.Monitor(bytes.NewReader(data))
			if err != nil {
				t.Error(err)
				return
			}
			results[c] = ms
		}(c, d)
	}
	wg.Wait()
	for c, ms := range results {
		found := false
		for _, m := range ms {
			if m.QueryID == c+1 {
				found = true
			}
		}
		if !found {
			t.Errorf("stream %d missed query %d", c, c+1)
		}
	}
}

func TestSaveLoadDetector(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	query := clip(t, 41, 20)
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := det.SaveQueries(&snap); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadDetector(testConfig(), bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumQueries() != 1 {
		t.Fatalf("restored %d queries", restored.NumQueries())
	}
	var stream bytes.Buffer
	err = ComposeStream(&stream, 80, 1,
		bytes.NewReader(clip(t, 600, 20)), bytes.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	data := stream.Bytes()
	a, err := det.Monitor(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Monitor(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("original %d matches, restored %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("match %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLoadDetectorKMismatch(t *testing.T) {
	det, _ := NewDetector(testConfig())
	det.AddQuery(1, bytes.NewReader(clip(t, 51, 10)))
	var snap bytes.Buffer
	det.SaveQueries(&snap)
	other := testConfig()
	other.K = 128
	if _, err := LoadDetector(other, bytes.NewReader(snap.Bytes())); err == nil {
		t.Error("K mismatch accepted")
	}
}

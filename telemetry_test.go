package vdsms

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"vdsms/internal/telemetry"
)

// scrapeDefault renders and re-parses the process-wide registry — the same
// structural validation a Prometheus server would perform.
func scrapeDefault(t *testing.T) *telemetry.Exposition {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := telemetry.ParseExposition(&buf)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return exp
}

// settleGoroutines waits for the goroutine count to return to base,
// failing with a full stack dump if it does not — transient runtime
// goroutines (GC, finalizers) need the retry loop.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, monitor started with %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMonitorCancelNoLeakWritesCheckpoint cancels a checkpointed parallel
// monitor mid-stream and checks the two shutdown guarantees: every worker
// goroutine exits, and a final checkpoint lands in the directory so the
// next Resume starts from the cancellation point instead of replaying the
// whole WAL.
func TestMonitorCancelNoLeakWritesCheckpoint(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 3
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = time.Hour // periodic path off: only cancel checkpoints

	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 71, 10))); err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	slow := &throttledReader{data: clip(t, 810, 60), delay: 2 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := det.MonitorContext(ctx, slow); err != context.DeadlineExceeded {
		t.Fatalf("MonitorContext = %v, want context.DeadlineExceeded", err)
	}
	settleGoroutines(t, base)

	ckpt := filepath.Join(cfg.CheckpointDir, CheckpointFileName)
	fi, err := os.Stat(ckpt)
	if err != nil {
		t.Fatalf("no final checkpoint after cancellation: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("final checkpoint is empty")
	}

	// The checkpoint is live: a resume restores the subscription and keeps
	// monitoring.
	if err := det.Close(); err != nil {
		t.Fatal(err)
	}
	det2, found, err := Resume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det2.Close()
	if !found || det2.NumQueries() != 1 {
		t.Fatalf("Resume after cancel: found=%v queries=%d, want true/1", found, det2.NumQueries())
	}
	if _, err := det2.Monitor(bytes.NewReader(clip(t, 811, 20))); err != nil {
		t.Fatalf("monitoring after resume: %v", err)
	}
}

// TestMonitorCancelWithoutCheckpointing is the same cancellation with
// durability off: still no leak, still the context error, and no state
// files appear anywhere.
func TestMonitorCancelWithoutCheckpointing(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 2
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 72, 10))); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	slow := &throttledReader{data: clip(t, 812, 60), delay: 2 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := det.MonitorContext(ctx, slow); err != context.DeadlineExceeded {
		t.Fatalf("MonitorContext = %v, want context.DeadlineExceeded", err)
	}
	settleGoroutines(t, base)
}

// TestWALTelemetryObserved checks the durability-path histograms move when
// a checkpointed monitor runs: every pushed batch is appended and fsynced,
// and the boundary checkpoints time their atomic writes.
func TestWALTelemetryObserved(t *testing.T) {
	before := scrapeDefault(t)

	cfg := testConfig()
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = time.Nanosecond // checkpoint at every window boundary
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 73, 10))); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Monitor(bytes.NewReader(clip(t, 813, 30))); err != nil {
		t.Fatal(err)
	}
	if err := det.Close(); err != nil {
		t.Fatal(err)
	}

	after := scrapeDefault(t)
	for _, name := range []string{
		"vcd_wal_append_duration_seconds_count",
		"vcd_wal_fsync_duration_seconds_count",
		"vcd_checkpoint_write_duration_seconds_count",
	} {
		a, ok := after.Value(name)
		if !ok {
			t.Errorf("scrape is missing %s", name)
			continue
		}
		b, _ := before.Value(name)
		if a-b <= 0 {
			t.Errorf("%s moved by %g, want > 0", name, a-b)
		}
	}
	a, _ := after.Value("vcd_wal_frames_total")
	b, _ := before.Value("vcd_wal_frames_total")
	if a-b != 60 { // 30 s at 2 key fps, every frame journalled
		t.Errorf("vcd_wal_frames_total moved by %g, want 60", a-b)
	}
}

// TestSlowWindowTracerFacade arms the tracer through Config.SlowWindow
// with an impossible budget, so every basic window of a monitored stream
// traces with stream-time positions.
func TestSlowWindowTracerFacade(t *testing.T) {
	cfg := testConfig()
	cfg.SlowWindow = time.Nanosecond
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 74, 10))); err != nil {
		t.Fatal(err)
	}
	var traces []SlowWindowTrace
	det.OnSlowWindow = func(tr SlowWindowTrace) { traces = append(traces, tr) }
	slowBefore := telSlowWindows.Value()
	if _, err := det.Monitor(bytes.NewReader(clip(t, 814, 30))); err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("1 ns budget traced no windows")
	}
	if got := telSlowWindows.Value() - slowBefore; got != int64(len(traces)) {
		t.Errorf("vcd_slow_windows_total moved by %d, want %d", got, len(traces))
	}
	for _, tr := range traces {
		if tr.Budget != time.Nanosecond || tr.Total <= 0 || tr.EndFrame <= tr.StartFrame {
			t.Fatalf("malformed trace %+v", tr)
		}
	}
}

// TestSlowWindowBudgetResolution pins the Config/environment precedence of
// the tracer threshold.
func TestSlowWindowBudgetResolution(t *testing.T) {
	base := testConfig() // WindowSec = 5
	cases := []struct {
		name string
		cfg  time.Duration
		env  string
		want time.Duration
	}{
		{"default off", 0, "", 0},
		{"env off", 0, "off", 0},
		{"env zero", 0, "0", 0},
		{"env duration", 0, "250ms", 250 * time.Millisecond},
		{"env budget", 0, "budget", 5 * time.Second},
		{"env garbage", 0, "shrug", 0},
		{"config wins", time.Second, "250ms", time.Second},
		{"config disables env", -1, "250ms", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Setenv(SlowWindowEnv, tc.env)
			cfg := base
			cfg.SlowWindow = tc.cfg
			if got := cfg.slowWindowBudget(); got != tc.want {
				t.Errorf("slowWindowBudget() = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestMetricsDisabledStillCounts pins the Enabled contract at the facade:
// with stage timing off, histograms stay still while throughput counters
// keep moving.
func TestMetricsDisabledStillCounts(t *testing.T) {
	prev := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prev)
	before := scrapeDefault(t)

	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 75, 10))); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Monitor(bytes.NewReader(clip(t, 815, 20))); err != nil {
		t.Fatal(err)
	}

	after := scrapeDefault(t)
	delta := func(name string, labels ...telemetry.Label) float64 {
		a, _ := after.Value(name, labels...)
		b, _ := before.Value(name, labels...)
		return a - b
	}
	if d := delta("vcd_frames_total"); d != 40 {
		t.Errorf("vcd_frames_total moved by %g with telemetry off, want 40 (counters stay on)", d)
	}
	for _, stage := range []string{"decode", "extract", "window_total"} {
		if d := delta("vcd_stage_duration_seconds_count", telemetry.L("stage", stage)); d != 0 {
			t.Errorf("stage %q observed %g times with telemetry off, want 0", stage, d)
		}
	}
}

package vdsms

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// TestFleetMatchesMonitor pins the facade-level equivalence: a fleet stream
// fed a feed segment by segment reports the same matches as Detector.Monitor
// consuming the identical bytes in one pass.
func TestFleetMatchesMonitor(t *testing.T) {
	query := clip(t, 61, 20)
	var feed bytes.Buffer
	err := ComposeStream(&feed, 80, 1,
		bytes.NewReader(clip(t, 600, 30)),
		bytes.NewReader(query),
		bytes.NewReader(clip(t, 601, 30)))
	if err != nil {
		t.Fatal(err)
	}

	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	want, err := det.Monitor(bytes.NewReader(feed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("Monitor reference run found no matches")
	}

	fl, err := NewFleet(testConfig(), FleetConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if err := fl.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	fs, err := fl.Attach("cam-1")
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode the feed into standalone segments: each PushSegment body
	// must be a self-contained MVC1 stream, so split at clip boundaries.
	for i, seg := range [][]byte{clip(t, 600, 30), query, clip(t, 601, 30)} {
		var one bytes.Buffer
		if err := ComposeStream(&one, 80, 1, bytes.NewReader(seg)); err != nil {
			t.Fatal(err)
		}
		if err := fs.PushSegment(bytes.NewReader(one.Bytes())); err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
	}
	fs.Detach(true)

	got := fs.Matches()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fleet matches diverge from Monitor:\n got %+v\nwant %+v", got, want)
	}
	if st := fs.Stats(); st.Frames != 160 {
		t.Errorf("frames = %d, want 160", st.Frames)
	}
}

// TestFleetFacadeCheckpoint round-trips a fleet through Checkpoint/
// RestoreFleet mid-stream and checks the restored streams finish their
// feeds with the same matches as an uninterrupted run.
func TestFleetFacadeCheckpoint(t *testing.T) {
	query := clip(t, 62, 20)
	head := clip(t, 700, 30)
	tail := clip(t, 701, 30)

	run := func(fl *Fleet, segs ...[]byte) {
		t.Helper()
		fs := fl.Stream("cam-1")
		if fs == nil {
			t.Fatal("cam-1 not attached")
		}
		for i, seg := range segs {
			err := fs.PushSegment(bytes.NewReader(seg))
			if errors.Is(err, ErrBackpressure) {
				// Nothing was enqueued; wait out the queue and resend.
				fl.Drain()
				err = fs.PushSegment(bytes.NewReader(seg))
			}
			if err != nil {
				t.Fatalf("segment %d: %v", i, err)
			}
		}
	}

	// Reference: one fleet plays the whole feed without interruption.
	ref, err := NewFleet(testConfig(), FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Attach("cam-1"); err != nil {
		t.Fatal(err)
	}
	run(ref, head, query, tail)
	want := ref.Stream("cam-1")
	want.Detach(true)

	// Checkpointed: same feed, suspended to disk after the head segment.
	fl, err := NewFleet(testConfig(), FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Attach("cam-1"); err != nil {
		t.Fatal(err)
	}
	run(fl, head)
	var blob bytes.Buffer
	if err := fl.Checkpoint(&blob); err != nil {
		t.Fatal(err)
	}
	fl.Close()

	restored, err := RestoreFleet(testConfig(), FleetConfig{}, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.NumQueries() != 1 {
		t.Fatalf("restored %d queries, want 1", restored.NumQueries())
	}
	run(restored, query, tail)
	got := restored.Stream("cam-1")
	got.Detach(true)

	if !reflect.DeepEqual(got.Matches(), want.Matches()) {
		t.Errorf("restored matches diverge:\n got %+v\nwant %+v", got.Matches(), want.Matches())
	}
	if gs, ws := got.Stats(), want.Stats(); gs.Frames != ws.Frames || gs.Windows != ws.Windows {
		t.Errorf("restored stats %+v, want %+v", gs, ws)
	}

	// A detection-incompatible config must be rejected at restore.
	bad := testConfig()
	bad.Delta = 0.9
	if _, err := RestoreFleet(bad, FleetConfig{}, bytes.NewReader(blob.Bytes())); err == nil {
		t.Error("incompatible config accepted at restore")
	}
}

// TestFleetBadSegment checks the facade-level guards around PushSegment.
func TestFleetBadSegment(t *testing.T) {
	fl, err := NewFleet(testConfig(), FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	fs, err := fl.Attach("cam-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.PushSegment(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage segment accepted")
	}
	// Wrong key-frame cadence: 24 fps GOP 1 → 24 key frames/s vs KeyFPS 2.
	var fast bytes.Buffer
	err = Synthesize(&fast, VideoOptions{
		Seconds: 2, FPS: 24, W: 96, H: 80, Seed: 9, Quality: 80, GOP: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.PushSegment(bytes.NewReader(fast.Bytes())); err == nil {
		t.Error("incompatible key-frame rate accepted")
	}
	if st := fs.Stats(); st.Frames != 0 {
		t.Errorf("rejected segments fed %d frames", st.Frames)
	}
	if _, err := fl.Attach("cam-1"); !errors.Is(err, ErrDuplicateStream) {
		t.Errorf("duplicate attach: %v", err)
	}
}

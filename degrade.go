// Facade-level overload control and fault tolerance: the wiring between
// the monitor loop and internal/degrade. The controller watches full
// ingest latency (front-end decode+extract plus the matching kernel) per
// basic window against Config.RealTimeBudget; when the p99 breaches, the
// shed level rises and the monitor loop starts substituting cheap work for
// expensive work — previous cell ids for low-motion extractions, skipped
// entropy decodes for low-delta frames — recovering when the load clears.
// See DESIGN.md "Overload & graceful degradation".
package vdsms

import (
	"sync/atomic"
	"time"

	"vdsms/internal/core"
	"vdsms/internal/degrade"
	"vdsms/internal/feature"
	"vdsms/internal/mpeg"
	"vdsms/internal/perfobs"
	"vdsms/internal/telemetry"
)

var (
	telShedLevel = telemetry.Default.Gauge("vcd_shed_level",
		"Current overload shed level (0 = full fidelity, 3 = maximum shedding).")
	telShedTransitions = telemetry.Default.Counter("vcd_shed_transitions_total",
		"Shed level changes (both directions) decided by the overload controller.")
	telShedExtract = telemetry.Default.Counter("vcd_shed_frames_total",
		"Key frames shed under overload, by pipeline stage.",
		telemetry.L("stage", "extract"))
	telShedDecode = telemetry.Default.Counter("vcd_shed_frames_total",
		"Key frames shed under overload, by pipeline stage.",
		telemetry.L("stage", "decode"))
	telResyncs = telemetry.Default.Counter("vcd_decode_resync_total",
		"Byte-scan resynchronisations after losing frame sync in a monitored stream.")
	telResyncCorrupt = telemetry.Default.Counter("vcd_decode_resync_corrupt_frames_total",
		"Frame slots skipped or substituted due to bitstream corruption.")
	telResyncSkipped = telemetry.Default.Counter("vcd_decode_resync_skipped_bytes_total",
		"Bytes discarded while scanning damaged streams for frame sync.")
	telResyncTruncated = telemetry.Default.Counter("vcd_decode_resync_truncated_total",
		"Monitored streams that ended early by truncation.")
	telReadRetries = telemetry.Default.Counter("vcd_read_retries_total",
		"Transient stream read errors absorbed by retry with backoff.")
)

// OverloadStats is a point-in-time view of the adaptive-ingest machinery:
// the overload control loop (shared across the detector's lineage) plus
// this detector's own shed and fault-recovery counters.
type OverloadStats struct {
	// Armed reports whether the overload controller exists at all
	// (Config.RealTimeBudget set, or SetRealTimeBudget called).
	Armed bool
	// Level is the current shed level, 0..degrade.MaxLevel.
	Level int
	// MaxLevel is the highest level the controller will request.
	MaxLevel int
	// Budget is the per-window real-time budget (zero = loop disabled).
	Budget time.Duration
	// RingP99 is the p99 of the current evidence ring; RunP99/RunMean
	// describe every window since the last level change (steady state).
	RingP99, RunP99, RunMean time.Duration
	// RunWindows counts windows since the last level change; Observed all
	// windows fed to the loop; ShedWindows those observed at level > 0;
	// Transitions the level changes.
	RunWindows, Observed, ShedWindows, Transitions int64
	// ExtractShed and DecodeShed count this detector's shed key frames.
	ExtractShed, DecodeShed int64
	// Resyncs, CorruptFrames, SkippedBytes and Truncated mirror
	// mpeg.ResyncStats, accumulated over this detector's monitored streams.
	Resyncs, CorruptFrames, SkippedBytes, Truncated int64
	// ReadRetries counts transient read errors absorbed with backoff.
	ReadRetries int64
}

// ovlState is the per-detector half of the overload machinery. The
// controller itself is shared by the lineage (like the slow-window
// budget); sampler, motion scorer and damage counters are per stream.
type ovlState struct {
	sampler *degrade.Sampler
	motion  feature.MotionScorer

	lastCell  uint64 // most recent emitted cell id, for substitution
	lastLevel int32

	extractShed atomic.Int64
	decodeShed  atomic.Int64
	rstats      struct{ resyncs, corrupt, skipped, truncated atomic.Int64 }
	retries     atomic.Int64
}

// armOverload wires eng's window-latency feed to the lineage's overload
// controller. Called from every engine construction site (NewDetector,
// NewStreamNamed, LoadDetector, Resume) so all engines of a lineage feed
// one loop. A detector without a real-time budget stays unwired — the
// timed window path then costs nothing extra.
func (d *Detector) armOverload(eng *core.Engine) {
	if d.ovl == nil {
		d.ovl = &ovlState{sampler: degrade.NewSampler()}
	}
	if d.ctl == nil {
		if d.cfg.RealTimeBudget <= 0 {
			return
		}
		d.ctl = degrade.NewController(degrade.ControllerConfig{Budget: d.cfg.RealTimeBudget})
	}
	eng.OnWindowDone = d.observeIngestWindow
}

// SetRealTimeBudget retunes (or arms) the overload controller at runtime.
// The new budget takes effect at the next observed window of every stream
// sharing this detector's lineage. On a detector constructed without a
// budget, monitoring started before this call stays unobserved — arm via
// Config.RealTimeBudget when the budget is known up front. Non-positive
// disables the loop and resets the shed level.
func (d *Detector) SetRealTimeBudget(budget time.Duration) {
	if d.ctl == nil {
		if budget <= 0 {
			return
		}
		d.cfg.RealTimeBudget = budget
		d.armOverload(d.engine)
		return
	}
	d.ctl.SetBudget(budget)
}

// RealTimeBudget returns the live per-window budget (zero = disabled).
func (d *Detector) RealTimeBudget() time.Duration {
	if d.ctl == nil {
		return 0
	}
	return d.ctl.Budget()
}

// ShedLevel returns the lineage's current shed level (0 when the overload
// controller is not armed).
func (d *Detector) ShedLevel() int {
	if d.ctl == nil {
		return 0
	}
	return d.ctl.Level()
}

// Overload returns the adaptive-ingest statistics: control-loop state
// shared across the lineage plus this detector's shed and fault-recovery
// counters.
func (d *Detector) Overload() OverloadStats {
	s := OverloadStats{MaxLevel: degrade.MaxLevel}
	if d.ovl != nil {
		s.ExtractShed = d.ovl.extractShed.Load()
		s.DecodeShed = d.ovl.decodeShed.Load()
		s.Resyncs = d.ovl.rstats.resyncs.Load()
		s.CorruptFrames = d.ovl.rstats.corrupt.Load()
		s.SkippedBytes = d.ovl.rstats.skipped.Load()
		s.Truncated = d.ovl.rstats.truncated.Load()
		s.ReadRetries = d.ovl.retries.Load()
	}
	if d.ctl == nil {
		return s
	}
	cs := d.ctl.Snapshot()
	s.Armed = true
	s.Level = cs.Level
	s.Budget = cs.Budget
	s.RingP99, s.RunP99, s.RunMean = cs.RingP99, cs.RunP99, cs.RunMean
	s.RunWindows, s.Observed = cs.RunWindows, cs.Observed
	s.ShedWindows, s.Transitions = cs.ShedWindows, cs.Transitions
	return s
}

// observeIngestWindow is the engine's OnWindowDone hook: it completes the
// kernel's window duration with the front end's (decode + extract, stored
// by the frontEndTimer at the window-filling frame) and feeds the loop.
func (d *Detector) observeIngestWindow(kernel time.Duration) {
	if d.ctl == nil {
		return
	}
	total := kernel
	if d.fe != nil {
		dec, ext := d.fe.takeLast()
		total += dec + ext
	}
	level := int32(d.ctl.Observe(total))
	if prev := d.ovl.lastLevel; level != prev {
		d.ovl.lastLevel = level
		telShedLevel.Set(float64(level))
		telShedTransitions.Inc()
	}
}

// shedArmed reports whether the monitor loop should make shed decisions.
func (d *Detector) shedArmed() bool { return d.ctl != nil && d.cfg.Shed }

// cellID turns one decoded frame into its grid-pyramid cell id, applying
// the shed policy: placeholder frames (nil DC grid — shed before decode,
// or lost to corruption) and extraction-shed frames substitute the most
// recent real cell id, preserving the window cadence the matcher expects.
func (d *Detector) cellID(dcf *mpeg.DCFrame, scratch []float64) uint64 {
	o := d.ovl
	if dcf.DC == nil {
		// The decode was shed (counted at the shed check) or the frame was
		// corrupt; either way there is nothing to extract.
		return o.lastCell
	}
	if d.shedArmed() {
		// Score every decoded frame — the tracker needs continuous history —
		// then let the sampler decide at the current level.
		score, ok := o.motion.Score(dcf)
		if !d.ovl.sampler.KeepExtract(d.ctl.Level(), score, ok) {
			o.extractShed.Add(1)
			telShedExtract.Inc()
			perfobs.DefaultOutliers.ObserveShed(d.perfLabel, 1)
			return o.lastCell
		}
	}
	id := d.pipeline.pt.CellInto(d.pipeline.ex.Vector(dcf), scratch)
	o.lastCell = id
	return id
}

// foldResyncStats folds one Monitor call's decoder damage counters into
// the detector's cumulative totals and the process metrics (the decoder is
// per-call, the counters outlive it).
func (d *Detector) foldResyncStats(rs mpeg.ResyncStats) {
	if rs.Resyncs > 0 {
		d.ovl.rstats.resyncs.Add(rs.Resyncs)
		telResyncs.Add(rs.Resyncs)
	}
	if rs.CorruptFrames > 0 {
		d.ovl.rstats.corrupt.Add(rs.CorruptFrames)
		telResyncCorrupt.Add(rs.CorruptFrames)
	}
	if rs.SkippedBytes > 0 {
		d.ovl.rstats.skipped.Add(rs.SkippedBytes)
		telResyncSkipped.Add(rs.SkippedBytes)
	}
	if rs.Truncated > 0 {
		d.ovl.rstats.truncated.Add(rs.Truncated)
		telResyncTruncated.Add(rs.Truncated)
	}
}

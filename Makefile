GO ?= go

.PHONY: all build test race bench bench-json bench-gate vet vuln fmt experiments fuzz snapshot-fuzz robustness-smoke queryscale-smoke overload-smoke fleet-smoke perf-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run XXX ./...

# Machine-readable window-kernel benchmark results (same workload as the
# BenchmarkWindow* suite, via internal/benchkit; includes the span-sampling
# ladder with its per-stage breakdown).
bench-json:
	$(GO) run ./cmd/vcdbench -bench-json BENCH_PR10.json

# Regression gate: rerun the suite and compare windows/sec and allocs/op
# against the previous PR's committed baseline. Fails when any benchmark
# regresses beyond the tolerance.
bench-gate:
	$(GO) run ./cmd/vcdbench -bench-json BENCH_PR10.json -bench-compare BENCH_PR9.json -bench-tolerance 0.35

vet:
	$(GO) vet ./...

# Known-vulnerability scan (network: resolves govulncheck and its DB).
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

fmt:
	gofmt -w .

# Regenerate every table and figure of the paper.
experiments:
	$(GO) run ./cmd/vcdbench all

fuzz:
	$(GO) test ./internal/bitio -fuzz FuzzReader -fuzztime 30s
	$(GO) test ./internal/mpeg -fuzz FuzzPartialDecoder -fuzztime 30s
	$(GO) test ./internal/mpeg -fuzz FuzzFullDecoder -fuzztime 30s
	$(GO) test ./cmd/vcdeval -fuzz FuzzParseTruth -fuzztime 30s
	$(GO) test ./cmd/vcdeval -fuzz FuzzReadReports -fuzztime 30s

# Reduced-scale temporal-attack robustness suite under the race detector:
# attack-transform invariants, per-family evaluation, and the end-to-end
# detection recall floors. Writes per-family P/R reports (JSON + CSV) into
# robustness-report/.
robustness-smoke:
	ROBUSTNESS_REPORT_DIR=$(CURDIR)/robustness-report $(GO) test -race -count=1 \
		-run 'TestRobustnessSmoke|TestTemporal|TestBuildAttack|TestEvaluateByFamily|TestReportGolden' \
		./internal/edit ./internal/workload ./internal/experiments ./cmd/vcdeval

# Reduced-scale pre-filter gate under the race detector: 10³ queries
# streamed with the Bloom tier off and on — match output must be identical,
# ≥90% of per-row probes rejected, bounded false positives — plus the
# filter/churn/equivalence suites. Writes the measured level as a JSON
# artifact into queryscale-report/.
queryscale-smoke:
	$(GO) test -race -count=1 ./internal/prefilter
	QUERYSCALE_REPORT_DIR=$(CURDIR)/queryscale-report $(GO) test -race -count=1 \
		-run 'TestQueryScaleSmoke|TestPreFilter|TestProbeShardMasked|TestProbeChurn|TestAddRemoveErrors|TestAddBatch|TestRowMask' \
		./internal/qindex ./internal/core ./internal/experiments

# Overload gate under the race detector: the degrade-layer unit suites plus
# the calibrate → observe → shed sweep at 2× sustainable ingest. The shed
# pass must reach decode shedding and bring the steady p99 back inside the
# budget with recall ≥ 0.5; the sweep report lands in overload-report/.
overload-smoke:
	$(GO) test -race -count=1 ./internal/degrade
	OVERLOAD_REPORT_DIR=$(CURDIR)/overload-report $(GO) test -race -count=1 \
		-run 'TestOverloadSmoke|TestOverload|TestReadyz|TestMonitorContext' \
		./internal/experiments ./internal/server .

# Fleet gate under the race detector: the stream-pool unit suites, the
# query-plane copy-on-write suites, the HTTP fleet endpoints, and the
# 64-stream pooled-vs-isolated equivalence checks (pooling must be
# output-neutral, per-stream memory O(1) in queries). The measured level
# lands in fleet-report/.
fleet-smoke:
	$(GO) test -race -count=1 ./internal/fleet
	FLEET_REPORT_DIR=$(CURDIR)/fleet-report $(GO) test -race -count=1 \
		-run 'TestFleetScaleSmoke|TestPlane|TestCloneProbeEquivalence|TestFleet' \
		./internal/core ./internal/qindex ./internal/experiments ./internal/server .

# Performance-attribution gate: a 64-stream fleet run at 1% span sampling
# under the race detector — /metrics must parse and lint clean with the
# in-repo exposition parser, /debug/spans and /debug/fleet/top must serve
# schema-stable JSON (the sampled spans land in perf-report/ as the CI
# artifact) — plus the zero-sampling contract: span capture at 0% must add
# no allocations and stay within 2% of the telemetry-off window baseline.
perf-smoke:
	mkdir -p perf-report
	PERF_SMOKE=1 PERF_SMOKE_OUT=$(CURDIR)/perf-report/spans.ndjson \
		$(GO) test -race -count=1 -run 'TestPerfSmoke' ./internal/server
	$(GO) test -race -count=1 ./internal/perfobs
	PERF_SMOKE=1 $(GO) test -count=1 \
		-run 'TestZeroSamplingSpanCaptureAddsNoAllocs|TestZeroSamplingOverheadGate' ./internal/benchkit

# Crash-recovery sweep under the race detector: snapshot/restore at every
# window boundary and worker-count combination must reproduce the
# uninterrupted run byte for byte.
snapshot-fuzz:
	$(GO) test -race -count=1 -run 'TestCrashPointSweep|TestExportStateCanonical|TestRestoreRejects' ./internal/core
	$(GO) test -race -count=1 -run 'TestResume|TestQueryChurn|TestCheckpoint|TestWAL|TestHeaderGolden' ./...
	$(GO) test -race -count=1 -run 'TestSnapshot' ./internal/server

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: all build test race bench vet fmt experiments fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run XXX ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Regenerate every table and figure of the paper.
experiments:
	$(GO) run ./cmd/vcdbench all

fuzz:
	$(GO) test ./internal/bitio -fuzz FuzzReader -fuzztime 30s
	$(GO) test ./internal/mpeg -fuzz FuzzPartialDecoder -fuzztime 30s
	$(GO) test ./internal/mpeg -fuzz FuzzFullDecoder -fuzztime 30s

clean:
	$(GO) clean ./...

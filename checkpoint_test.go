package vdsms

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// composeSeg builds one encoded stream segment from clips (all-intra, so
// key-frame counts are exact).
func composeSeg(t *testing.T, clips ...[]byte) []byte {
	t.Helper()
	rs := make([]io.Reader, len(clips))
	for i, c := range clips {
		rs[i] = bytes.NewReader(c)
	}
	var buf bytes.Buffer
	if err := ComposeStream(&buf, 80, 1, rs...); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeContinuesExactly is the facade-level recovery guarantee: a
// monitor that crashes after consuming a segment — with its state only in
// the checkpoint directory's WAL — resumes via WAL replay and finishes the
// stream with exactly the matches and stats of an uninterrupted run.
func TestResumeContinuesExactly(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointDir = t.TempDir()

	query := clip(t, 11, 20)
	// Segment lengths are multiples of the 5 s basic window so no partial
	// window is flushed at the segment boundary: the crash run's state then
	// lives purely in the WAL (the flush path would fold it into a
	// checkpoint and bypass replay).
	seg1 := composeSeg(t, clip(t, 110, 30), query) // copy at [30s, 50s)
	seg2 := composeSeg(t, clip(t, 111, 30))

	// Reference: uninterrupted run without checkpointing.
	refCfg := cfg
	refCfg.CheckpointDir = ""
	ref, err := NewDetector(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	refM1, err := ref.Monitor(bytes.NewReader(seg1))
	if err != nil {
		t.Fatal(err)
	}
	refM2, err := ref.Monitor(bytes.NewReader(seg2))
	if err != nil {
		t.Fatal(err)
	}
	if len(refM1) == 0 {
		t.Fatal("reference run found no matches; the test would prove nothing")
	}

	// Crash run: consume segment 1 with durability on, then abandon the
	// detector without any shutdown courtesy.
	det1, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det1.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	m1, err := det1.Monitor(bytes.NewReader(seg1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, refM1) {
		t.Fatalf("pre-crash matches diverge from reference:\nwant %+v\ngot  %+v", refM1, m1)
	}
	det1 = nil // crash

	// Recovery: the checkpoint holds frame 0 state (query subscription);
	// every segment-1 frame comes back through WAL replay.
	det2, found, err := Resume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("Resume found no checkpoint")
	}
	if !reflect.DeepEqual(det2.Replayed, refM1) {
		t.Fatalf("replayed matches diverge from the crashed run:\nwant %+v\ngot  %+v", refM1, det2.Replayed)
	}
	m2, err := det2.Monitor(bytes.NewReader(seg2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2, refM2) {
		t.Fatalf("post-resume matches diverge from reference:\nwant %+v\ngot  %+v", refM2, m2)
	}
	if !reflect.DeepEqual(det2.Stats().Totals(), ref.Stats().Totals()) {
		t.Fatalf("post-resume stats totals diverge:\nwant %+v\ngot  %+v",
			ref.Stats().Totals(), det2.Stats().Totals())
	}
	if err := det2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResumeAcrossWorkerCounts: a checkpoint taken at one worker count
// restores at another — parallelism is a runtime choice, not state.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointDir = t.TempDir()
	cfg.Workers = 4

	query := clip(t, 21, 20)
	seg1 := composeSeg(t, clip(t, 210, 30), query)
	seg2 := composeSeg(t, clip(t, 211, 30))

	refCfg := cfg
	refCfg.CheckpointDir = ""
	refCfg.Workers = 0
	ref, err := NewDetector(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	refM1, _ := ref.Monitor(bytes.NewReader(seg1))
	refM2, _ := ref.Monitor(bytes.NewReader(seg2))

	det1, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det1.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	if _, err := det1.Monitor(bytes.NewReader(seg1)); err != nil {
		t.Fatal(err)
	}

	rcfg := cfg
	rcfg.Workers = 0
	det2, _, err := Resume(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(det2.Replayed, refM1) {
		t.Fatalf("replayed matches diverge across worker counts:\nwant %+v\ngot  %+v", refM1, det2.Replayed)
	}
	m2, err := det2.Monitor(bytes.NewReader(seg2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2, refM2) {
		t.Fatalf("post-resume matches diverge across worker counts:\nwant %+v\ngot  %+v", refM2, m2)
	}
}

// TestResumeRejectsConfigDrift pins the loud-failure contract at the
// facade: a drifted detection parameter or pipeline parameter refuses to
// resume, naming the field.
func TestResumeRejectsConfigDrift(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointDir = t.TempDir()
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 31, 20))); err != nil {
		t.Fatal(err)
	}

	bad := cfg
	bad.Delta = 0.9
	if _, _, err := Resume(bad); err == nil || !strings.Contains(err.Error(), "Delta") {
		t.Errorf("Delta drift: err = %v, want mention of Delta", err)
	}
	bad = cfg
	bad.U = 8
	if _, _, err := Resume(bad); err == nil || !strings.Contains(err.Error(), "U") {
		t.Errorf("U drift: err = %v, want mention of U", err)
	}
	// The unchanged configuration resumes.
	if _, found, err := Resume(cfg); err != nil || !found {
		t.Errorf("clean resume failed: found=%v err=%v", found, err)
	}
}

// TestResumeFreshDirectory: Resume on an empty directory is a clean start
// that arms checkpointing.
func TestResumeFreshDirectory(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointDir = t.TempDir()
	d, found, err := Resume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("Resume reported a checkpoint in an empty directory")
	}
	if len(d.Replayed) != 0 {
		t.Errorf("fresh resume replayed %d matches", len(d.Replayed))
	}
	if _, err := os.Stat(filepath.Join(cfg.CheckpointDir, CheckpointFileName)); err != nil {
		t.Errorf("fresh resume left no checkpoint: %v", err)
	}
	if _, found, err = Resume(cfg); err != nil || !found {
		t.Errorf("second resume: found=%v err=%v", found, err)
	}
}

// TestQueryChurnIsDurable: AddQuery/RemoveQuery checkpoint immediately
// (subscriptions are not in the WAL), so a crash right after churn still
// resumes with the correct query set.
func TestQueryChurnIsDurable(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointDir = t.TempDir()
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 41, 20))); err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(2, bytes.NewReader(clip(t, 42, 20))); err != nil {
		t.Fatal(err)
	}
	if err := det.RemoveQuery(1); err != nil {
		t.Fatal(err)
	}
	// Crash; resume must see exactly query 2.
	d2, _, err := Resume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ids := d2.QueryIDs(); len(ids) != 1 || ids[0] != 2 {
		t.Errorf("resumed query set = %v, want [2]", ids)
	}
}

package vdsms_test

import (
	"bytes"
	"fmt"
	"log"

	"vdsms"
)

// Example demonstrates end-to-end copy detection: a synthetic query clip
// is embedded (with edits and segment reordering) in a longer stream and
// found by the detector.
func Example() {
	mk := func(seed int64, seconds float64) []byte {
		var b bytes.Buffer
		err := vdsms.Synthesize(&b, vdsms.VideoOptions{
			Seconds: seconds, FPS: 2, W: 96, H: 80, Seed: seed, GOP: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		return b.Bytes()
	}
	query := mk(1, 20)

	// Manufacture a pirated copy: brightness shift plus shot reordering.
	var pirated bytes.Buffer
	err := vdsms.ApplyEdits(&pirated, bytes.NewReader(query), vdsms.EditOptions{
		Brightness: 15, ReorderSegSec: 5, Seed: 2, GOP: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	var stream bytes.Buffer
	err = vdsms.ComposeStream(&stream, 75, 1,
		bytes.NewReader(mk(100, 30)),
		bytes.NewReader(pirated.Bytes()),
		bytes.NewReader(mk(101, 30)),
	)
	if err != nil {
		log.Fatal(err)
	}

	cfg := vdsms.DefaultConfig()
	cfg.Delta = 0.6
	det, err := vdsms.NewDetector(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		log.Fatal(err)
	}
	matches, err := det.Monitor(&stream)
	if err != nil {
		log.Fatal(err)
	}
	found := false
	for _, m := range matches {
		// The copy occupies stream time [30 s, 50 s).
		if m.QueryID == 1 && m.DetectedAt.Seconds() >= 30 && m.DetectedAt.Seconds() <= 60 {
			found = true
		}
	}
	fmt.Println("reordered copy detected:", found)
	// Output: reordered copy detected: true
}

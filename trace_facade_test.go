package vdsms

import (
	"bytes"
	"testing"
)

// TestDetectorExplain exercises the facade's decision-provenance surface:
// arming via Config, the explain API (LastMatchID/MatchRecord/MatchRecords)
// and the per-stream event feed — the plumbing vcdmon -explain and the
// /debug endpoints stand on.
func TestDetectorExplain(t *testing.T) {
	cfg := testConfig()
	cfg.TraceEvents = 8192
	cfg.AuditFraction = 1
	cfg.StreamName = "facade-explain"
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Tracing() || det.StreamName() != "facade-explain" {
		t.Fatalf("tracing not armed: Tracing=%v StreamName=%q", det.Tracing(), det.StreamName())
	}
	if det.LastMatchID() != 0 {
		t.Errorf("LastMatchID before any match = %d", det.LastMatchID())
	}

	query := clip(t, 31, 20)
	if err := det.AddQuery(3, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	err = ComposeStream(&stream, 80, 1,
		bytes.NewReader(clip(t, 130, 30)),
		bytes.NewReader(query),
		bytes.NewReader(clip(t, 131, 30)),
	)
	if err != nil {
		t.Fatal(err)
	}

	// LastMatchID must already resolve inside the OnMatch callback — the
	// hook vcdmon -explain prints its EXPLAIN line from.
	var callbackRecords []MatchRecord
	det.OnMatch = func(m Match) {
		rec, ok := det.MatchRecord(det.LastMatchID())
		if !ok {
			t.Errorf("no provenance record inside OnMatch for %+v", m)
			return
		}
		callbackRecords = append(callbackRecords, rec)
	}
	matches, err := det.Monitor(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("embedded copy not detected")
	}
	if len(callbackRecords) != len(matches) {
		t.Fatalf("%d records resolved in callbacks for %d matches", len(callbackRecords), len(matches))
	}
	for i, rec := range callbackRecords {
		m := matches[i]
		if rec.QueryID != m.QueryID || rec.Similarity != m.Similarity {
			t.Errorf("record %d does not describe its match:\nrecord: %+v\nmatch:  %+v", rec.ID, rec, m)
		}
		if rec.Stream != "facade-explain" || rec.Order == "" || rec.Method == "" {
			t.Errorf("record %d missing provenance labels: %+v", rec.ID, rec)
		}
		if len(rec.Trajectory) == 0 {
			t.Errorf("record %d has no trajectory", rec.ID)
		}
		if rec.Audit == nil {
			t.Errorf("record %d not audited despite AuditFraction=1", rec.ID)
		} else if rec.Audit.Violated || rec.Audit.AbsError > rec.Audit.Bound {
			t.Errorf("record %d violates Theorem 1's bound: %+v", rec.ID, rec.Audit)
		}
	}

	recs := det.MatchRecords(0)
	if len(recs) != len(matches) {
		t.Errorf("MatchRecords returned %d records for %d matches", len(recs), len(matches))
	}
	evs := det.TraceEvents(0)
	if len(evs) == 0 {
		t.Fatal("no trace events for the detector's stream")
	}
	kinds := map[string]bool{}
	for _, ev := range evs {
		if ev.StreamName != "facade-explain" {
			t.Fatalf("event from foreign stream leaked: %+v", ev)
		}
		kinds[ev.Kind.String()] = true
	}
	for _, k := range []string{"born", "extended", "reported"} {
		if !kinds[k] {
			t.Errorf("no %s events in the detector's feed", k)
		}
	}
}

// TestDetectorTracingOff pins the default: no trace config, no journal
// stream, explain API inert.
func TestDetectorTracingOff(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if det.Tracing() || det.StreamName() != "" || det.LastMatchID() != 0 {
		t.Error("untraced detector leaks tracing state")
	}
	if _, ok := det.MatchRecord(1); ok {
		t.Error("untraced MatchRecord returned a record")
	}
	if det.MatchRecords(0) != nil || det.TraceEvents(0) != nil {
		t.Error("untraced record/event feeds not nil")
	}
}

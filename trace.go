// Facade-level decision provenance: arming the candidate-lifecycle event
// journal and the sampled exact-audit channel, plus the explain API that
// vcdmon -explain and the server's /debug endpoints consume.
package vdsms

import (
	"math"

	"vdsms/internal/core"
	"vdsms/internal/trace"
)

// TraceEvent is one candidate-lifecycle observation; see internal/trace
// for kind semantics (born, extended, pruned, dropped, expired, reported,
// near_miss).
type TraceEvent = trace.Event

// MatchRecord is the provenance record attached to an emitted match:
// window span, per-window estimate trajectory, combination order,
// signature method and (when sampled) the exact-audit measurement.
type MatchRecord = trace.MatchRecord

// AuditResult is one sampled exact-Jaccard audit of a report or prune
// decision, judged against Theorem 1's deviation bound.
type AuditResult = trace.AuditResult

// armTrace wires decision-provenance tracing into a freshly built engine.
// The first call (per detector) creates the journal recorder; engine swaps
// (LoadDetector, Resume) re-install the same recorder so the detector
// keeps its journal stream. No-op when neither Config.TraceEvents nor
// Config.AuditFraction arms tracing.
func (d *Detector) armTrace(eng *core.Engine) {
	if d.tracer == nil {
		if d.cfg.TraceEvents <= 0 && d.cfg.AuditFraction <= 0 {
			return
		}
		if d.cfg.TraceEvents > trace.DefaultEventCap {
			trace.Default.SetEventCapacity(d.cfg.TraceEvents)
		}
		d.tracer = eng.Trace(trace.Default, d.cfg.StreamName)
	} else {
		eng.SetTracer(d.tracer)
	}
	if f := d.cfg.AuditFraction; f > 0 {
		every := 1
		if f < 1 {
			every = int(math.Round(1 / f))
			if every < 1 {
				every = 1
			}
		}
		eng.SetAudit(every)
	}
}

// Tracing reports whether decision-provenance tracing is armed.
func (d *Detector) Tracing() bool { return d.tracer != nil }

// StreamName returns this detector's trace-journal stream name, or "" when
// tracing is off.
func (d *Detector) StreamName() string {
	if d.tracer == nil {
		return ""
	}
	return d.tracer.StreamName()
}

// LastMatchID returns the journal id of this detector's most recent match
// (0 when tracing is off or no match was emitted yet). Valid inside an
// OnMatch callback: the provenance record exists before the callback runs.
func (d *Detector) LastMatchID() uint64 { return d.tracer.LastMatchID() }

// MatchRecord returns the provenance record of a match by journal id, if
// tracing is armed and the record is still retained by the bounded ring.
func (d *Detector) MatchRecord(id uint64) (MatchRecord, bool) {
	if d.tracer == nil {
		return MatchRecord{}, false
	}
	return d.tracer.Journal().Match(id)
}

// MatchRecords returns the retained provenance records of this detector's
// stream, oldest first (up to limit; 0 means all retained).
func (d *Detector) MatchRecords(limit int) []MatchRecord {
	if d.tracer == nil {
		return nil
	}
	name := d.tracer.StreamName()
	all := d.tracer.Journal().Matches(0)
	out := all[:0]
	for _, rec := range all {
		if rec.Stream == name {
			out = append(out, rec)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// TraceEvents returns the retained lifecycle events of this detector's
// stream, oldest first (up to limit; 0 means all retained).
func (d *Detector) TraceEvents(limit int) []TraceEvent {
	if d.tracer == nil {
		return nil
	}
	return d.tracer.Journal().Events(trace.Filter{
		Stream: d.tracer.StreamName(),
		Kind:   trace.KindAny,
		Limit:  limit,
	})
}

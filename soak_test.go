package vdsms

import (
	"bytes"
	"io"
	"runtime"
	"testing"
)

// repeatingStream serves one encoded segment's frames over and over as a
// single endless-ish stream: header once, then the frame payloads of the
// segment repeated n times. Segments must start with an I-frame (GOP 1
// here), so the concatenation is a valid stream.
func repeatingStream(t *testing.T, segment []byte, repeats int) io.Reader {
	t.Helper()
	const headerSize = 18 // mpeg stream header bytes
	readers := []io.Reader{bytes.NewReader(segment[:headerSize])}
	for i := 0; i < repeats; i++ {
		readers = append(readers, bytes.NewReader(segment[headerSize:]))
	}
	return io.MultiReader(readers...)
}

// TestSoakLongStreamBoundedMemory monitors roughly two hours of stream
// time and asserts the detector's memory stays bounded — candidate expiry,
// signature pruning and archival retention must all hold up over long
// runs.
func TestSoakLongStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := testConfig()
	cfg.ArchiveSec = 30
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	query := clip(t, 81, 20)
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	var archived int
	det.OnMatchClip = func(Match, []byte) { archived++ }

	// One 6-minute segment containing a copy, repeated 20 times ≈ 2 hours.
	var segment bytes.Buffer
	err = ComposeStream(&segment, 78, 1,
		bytes.NewReader(clip(t, 910, 170)),
		bytes.NewReader(query),
		bytes.NewReader(clip(t, 911, 170)),
	)
	if err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	const repeats = 20
	matches, err := det.Monitor(repeatingStream(t, segment.Bytes(), repeats))
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)

	st := det.Stats()
	wantFrames := repeats * 720 // 360 s × 2 key fps per repeat
	if st.Frames != wantFrames {
		t.Fatalf("processed %d key frames, want %d", st.Frames, wantFrames)
	}
	// Every repetition contains one copy; all must be found.
	found := 0
	last := -1
	for _, m := range matches {
		if int(m.DetectedAt.Seconds())/360 != last {
			last = int(m.DetectedAt.Seconds()) / 360
			found++
		}
	}
	if found < repeats {
		t.Errorf("detected copies in %d of %d repetitions", found, repeats)
	}
	if archived == 0 {
		t.Error("no segments archived during the soak")
	}
	// Heap growth must stay far below the stream size (accumulating
	// matches/archive callbacks aside, state is bounded).
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth > 64<<20 {
		t.Errorf("heap grew by %d MiB over a 2-hour stream", growth>>20)
	}
}

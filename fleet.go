// Fleet facade: many monitored streams over one shared query plane. This
// is the multi-tenant face of the Detector — where NewStream hands each
// concurrent stream its own goroutine and Monitor loop, a Fleet multiplexes
// N streams (1k+) over a fixed worker pool with bounded per-stream queues,
// admission control and one fleet-wide checkpoint. See internal/fleet for
// the pool mechanics and DESIGN.md §13 for the memory model.
package vdsms

import (
	"fmt"
	"io"
	"time"

	"vdsms/internal/core"
	"vdsms/internal/fleet"
	"vdsms/internal/mpeg"
	"vdsms/internal/snapshot"
)

// Re-exported fleet errors; branch with errors.Is.
var (
	// ErrFleetFull reports an Attach rejected by admission control.
	ErrFleetFull = fleet.ErrFleetFull
	// ErrBackpressure reports a PushSegment rejected because the stream's
	// queue is full. The segment was decoded but NOT enqueued; retry,
	// thin, or drop at the producer.
	ErrBackpressure = fleet.ErrBackpressure
	// ErrDuplicateStream reports an Attach with an id already in use.
	ErrDuplicateStream = fleet.ErrDuplicateStream
)

// FleetConfig tunes the stream pool around the detection configuration.
type FleetConfig struct {
	// Workers is the number of pool workers streams multiplex over.
	// Defaults to GOMAXPROCS.
	Workers int
	// MaxStreams caps concurrently attached streams (admission control);
	// 0 means unlimited.
	MaxStreams int
	// QueueWindows bounds each stream's pending frames, in basic windows.
	// Defaults to 8.
	QueueWindows int
}

// A Fleet monitors many streams against one shared, versioned query plane.
// Query memory (sketches, Hash-Query index, pre-filter) is O(queries)
// regardless of the stream count; per-stream state is candidate lists and
// a window buffer. Attach/Detach, query churn and segment pushes may all
// be called concurrently; subscription churn lands through the plane's
// copy-on-write swap without stalling any stream's ingest.
type Fleet struct {
	cfg     Config
	pl      pipeline
	winKeyF int
	pool    *fleet.Pool
}

// NewFleet builds a fleet with a fresh query plane.
func NewFleet(cfg Config, fc FleetConfig) (*Fleet, error) {
	d, err := NewDetector(cfg)
	if err != nil {
		return nil, err
	}
	return d.NewFleet(fc)
}

// NewFleet builds a fleet sharing this detector's query plane: queries
// already subscribed (or subscribed later through either side) cover the
// detector's own stream and every fleet stream alike.
func (d *Detector) NewFleet(fc FleetConfig) (*Fleet, error) {
	ecfg := d.engine.Config()
	// Pool streams run their windows serially; parallelism comes from the
	// pool's workers, not from fanning out inside each window.
	ecfg.Workers = 0
	pcfg := fleet.Config{
		Engine:      ecfg,
		Workers:     fc.Workers,
		MaxStreams:  fc.MaxStreams,
		QueueFrames: fc.QueueWindows * d.winKeyF,
	}
	pool, err := fleet.NewWith(pcfg, d.engine.Queries())
	if err != nil {
		return nil, err
	}
	return &Fleet{cfg: d.cfg, pl: d.pipeline, winKeyF: d.winKeyF, pool: pool}, nil
}

// RestoreFleet rebuilds a fleet from a Fleet.Checkpoint stream: the shared
// plane is loaded once, and every checkpointed stream re-attaches with its
// matching state (candidates, partial window, stats) intact. cfg must be
// detection-compatible with the checkpointing run.
func RestoreFleet(cfg Config, fc FleetConfig, r io.Reader) (*Fleet, error) {
	d, err := NewDetector(cfg)
	if err != nil {
		return nil, err
	}
	ecfg := d.engine.Config()
	ecfg.Workers = 0
	pcfg := fleet.Config{
		Engine:      ecfg,
		Workers:     fc.Workers,
		MaxStreams:  fc.MaxStreams,
		QueueFrames: fc.QueueWindows * d.winKeyF,
	}
	pool, err := fleet.Restore(pcfg, r, d.meta())
	if err != nil {
		return nil, err
	}
	return &Fleet{cfg: cfg, pl: d.pipeline, winKeyF: d.winKeyF, pool: pool}, nil
}

// Checkpoint writes the fleet's full state: the shared query plane once,
// plus one small delta per stream. Producers and query churn must pause
// while it runs (it drains every stream queue first).
func (f *Fleet) Checkpoint(w io.Writer) error {
	return f.pool.Checkpoint(w, fleetMeta(f.cfg))
}

// fleetMeta mirrors Detector.meta: the pipeline-level parameters stamped
// into every stream blob's fingerprint.
func fleetMeta(cfg Config) snapshot.Meta {
	return snapshot.Meta{U: cfg.U, D: cfg.D, KeyFPS: cfg.KeyFPS}
}

// AddQuery subscribes a continuous query from an encoded MVC1 clip,
// fleet-wide: every attached stream sees it at its next window.
func (f *Fleet) AddQuery(id int, clip io.Reader) error {
	dcs, _, err := mpeg.ReadAllDC(clip)
	if err != nil {
		return fmt.Errorf("vdsms: decoding query %d: %w", id, err)
	}
	if len(dcs) == 0 {
		return fmt.Errorf("vdsms: query %d has no key frames", id)
	}
	return f.pool.AddQuery(id, f.pl.ids(dcs))
}

// AddQueries subscribes a batch of MVC1 clips in one bulk index build and
// one plane version.
func (f *Fleet) AddQueries(ids []int, clips []io.Reader) error {
	if len(ids) != len(clips) {
		return fmt.Errorf("vdsms: AddQueries: %d ids but %d clips", len(ids), len(clips))
	}
	cellIDs := make([][]uint64, len(clips))
	for i, clip := range clips {
		dcs, _, err := mpeg.ReadAllDC(clip)
		if err != nil {
			return fmt.Errorf("vdsms: decoding query %d: %w", ids[i], err)
		}
		if len(dcs) == 0 {
			return fmt.Errorf("vdsms: query %d has no key frames", ids[i])
		}
		cellIDs[i] = f.pl.ids(dcs)
	}
	return f.pool.AddQueries(ids, cellIDs)
}

// RemoveQuery unsubscribes a query fleet-wide.
func (f *Fleet) RemoveQuery(id int) error { return f.pool.RemoveQuery(id) }

// NumQueries returns the number of subscribed queries.
func (f *Fleet) NumQueries() int { return f.pool.Queries().Len() }

// PlaneBytes returns the shared query plane's memory footprint in bytes —
// the cost paid once instead of once per stream.
func (f *Fleet) PlaneBytes() int { return f.pool.PlaneBytes() }

// Attach admits a new stream. Errors: ErrFleetFull (admission limit),
// ErrDuplicateStream, or a closed fleet.
func (f *Fleet) Attach(id string) (*FleetStream, error) {
	s, err := f.pool.Attach(id)
	if err != nil {
		return nil, err
	}
	return &FleetStream{fl: f, s: s}, nil
}

// Stream returns the attached stream with the given id, or nil.
func (f *Fleet) Stream(id string) *FleetStream {
	s := f.pool.Stream(id)
	if s == nil {
		return nil
	}
	return &FleetStream{fl: f, s: s}
}

// StreamIDs returns the attached stream ids, sorted.
func (f *Fleet) StreamIDs() []string { return f.pool.StreamIDs() }

// Len returns the number of attached streams.
func (f *Fleet) Len() int { return f.pool.Len() }

// FleetWorkerStats is one worker's load breakdown; see fleet.WorkerStats.
type FleetWorkerStats = fleet.WorkerStats

// WorkerStats returns a per-worker load breakdown, ordered by worker id.
func (f *Fleet) WorkerStats() []FleetWorkerStats { return f.pool.WorkerStats() }

// QueueDepthHW returns the deepest the pool-wide frame backlog has run
// since the fleet started — the high-watermark behind the
// vcd_fleet_queue_depth gauge.
func (f *Fleet) QueueDepthHW() int64 { return f.pool.QueueDepthHW() }

// Drain blocks until every stream queue is empty (producers must pause).
func (f *Fleet) Drain() { f.pool.Drain() }

// Close stops the pool's workers. Streams stay readable but stop
// processing; call Drain first for a graceful stop.
func (f *Fleet) Close() { f.pool.Close() }

// A FleetStream is one monitored stream of a Fleet.
type FleetStream struct {
	fl *Fleet
	s  *fleet.Stream
}

// ID returns the stream id.
func (fs *FleetStream) ID() string { return fs.s.ID() }

// PushSegment decodes an encoded MVC1 segment (a chunk of the stream;
// consecutive calls concatenate) and enqueues its key-frame fingerprints.
// Decoding happens on the caller's goroutine — producers parallelise the
// front-end while the pool runs the matching kernel. A full stream queue
// rejects the whole segment with ErrBackpressure: nothing is enqueued, so
// a retried segment cannot double-feed frames.
func (fs *FleetStream) PushSegment(segment io.Reader) error {
	dcs, hdr, err := mpeg.ReadAllDC(segment)
	if err != nil {
		return err
	}
	keyRate := hdr.FPS() / float64(hdr.GOP)
	if keyRate < fs.fl.cfg.KeyFPS*0.8 || keyRate > fs.fl.cfg.KeyFPS*1.25 {
		return fmt.Errorf("vdsms: stream key-frame rate %.2f/s incompatible with configured %.2f/s",
			keyRate, fs.fl.cfg.KeyFPS)
	}
	if len(dcs) == 0 {
		return nil
	}
	return fs.s.Push(fs.fl.pl.ids(dcs))
}

// Matches returns the matches reported so far, in stream time.
func (fs *FleetStream) Matches() []Match {
	raw := fs.s.Matches()
	out := make([]Match, len(raw))
	for i, m := range raw {
		out[i] = convertMatch(m, fs.fl.cfg.KeyFPS)
	}
	return out
}

// Stats returns the stream's engine counters.
func (fs *FleetStream) Stats() Stats { return fs.s.Stats() }

// Pending returns the stream's queued plus in-flight frame count.
func (fs *FleetStream) Pending() int { return fs.s.Pending() }

// Detach removes the stream from the fleet. With drain true, queued
// frames are processed and a final partial window flushed first; with
// drain false the queue is dropped. The stream stays readable either way.
func (fs *FleetStream) Detach(drain bool) { fs.s.Detach(drain) }

// convertMatch maps engine key-frame indices to stream time.
func convertMatch(m core.Match, keyFPS float64) Match {
	toDur := func(keyFrame int) time.Duration {
		return time.Duration(float64(keyFrame) / keyFPS * float64(time.Second))
	}
	return Match{
		QueryID:    m.QueryID,
		Start:      toDur(m.StartFrame),
		End:        toDur(m.EndFrame),
		DetectedAt: toDur(m.DetectedAt),
		Similarity: m.Similarity,
	}
}
